//! The droplet-ejection interface: an analytic level set describing an
//! inkjet liquid jet that necks, pinches off, and breaks into droplets by
//! capillary (Rayleigh–Plateau) instability — the paper's driving
//! scientific problem (§5.1, Fig. 1(c)).
//!
//! The paper ran Gerris' full incompressible multiphase solver on Titan;
//! here the interface position is prescribed analytically (see DESIGN.md,
//! substitution table). What matters for the data-structure evaluation is
//! reproduced faithfully: a thin moving feature that the mesh must track
//! at fine resolution, octant churn between steps (39–99% overlap), and a
//! four-orders-of-magnitude scale separation between nozzle and domain.

/// Parameters of the droplet-ejection scenario (normalized to the unit
/// cube and unit ejection time).
#[derive(Clone, Copy, Debug)]
pub struct DropletParams {
    /// Nozzle axis position in the x/y plane.
    pub axis: [f64; 2],
    /// Initial jet radius (the paper's device has a ~10 µm nozzle in a
    /// cm-scale domain; we keep the mesh-relevant ratio milder so the
    /// interface is resolvable at bench scales).
    pub jet_radius: f64,
    /// Jet tip velocity (domain lengths per unit time).
    pub jet_velocity: f64,
    /// Time of first pinch-off.
    pub t_pinch: f64,
    /// Rayleigh–Plateau wavenumber along the jet (perturbation waves per
    /// domain length).
    pub wavenumber: f64,
    /// Number of primary droplets after breakup.
    pub droplets: usize,
    /// Satellite droplet radius ratio (small secondary droplets between
    /// primaries, a well-known inkjet phenomenon).
    pub satellite_ratio: f64,
}

impl Default for DropletParams {
    fn default() -> Self {
        DropletParams {
            axis: [0.5, 0.5],
            jet_radius: 0.06,
            jet_velocity: 0.9,
            t_pinch: 0.45,
            wavenumber: 6.0,
            droplets: 3,
            satellite_ratio: 0.35,
        }
    }
}

/// The time-dependent liquid interface.
#[derive(Clone, Copy, Debug, Default)]
pub struct DropletEjection {
    /// Scenario parameters.
    pub params: DropletParams,
}

impl DropletEjection {
    /// Create with given parameters.
    pub fn new(params: DropletParams) -> Self {
        DropletEjection { params }
    }

    /// Signed distance (approximate) to the liquid interface at position
    /// `x` and time `t`: negative inside the liquid.
    pub fn phi(&self, x: [f64; 3], t: f64) -> f64 {
        let p = &self.params;
        let r_xy = ((x[0] - p.axis[0]).powi(2) + (x[1] - p.axis[1]).powi(2)).sqrt();
        if t < p.t_pinch {
            // Growing jet column with a growing varicose perturbation.
            let tip = (p.jet_velocity * t).min(0.95);
            let growth = (t / p.t_pinch).powi(2);
            let neck = 1.0
                - 0.85 * growth * (0.5 + 0.5 * (p.wavenumber * std::f64::consts::TAU * x[2]).cos());
            let radius = p.jet_radius * neck.max(0.05);
            if x[2] <= tip {
                // Column region: radial distance, capped by tip cap.
                let d_col = r_xy - radius;
                let d_tip = ((r_xy).powi(2) + (x[2] - tip).powi(2)).sqrt() - radius;
                if x[2] > tip - radius {
                    d_col.min(d_tip)
                } else {
                    d_col
                }
            } else {
                // Beyond the tip: distance to the hemispherical cap.
                ((r_xy).powi(2) + (x[2] - tip).powi(2)).sqrt() - radius
            }
        } else {
            // After pinch-off: primary droplets + satellites flying along z.
            let dt = t - p.t_pinch;
            let mut d = f64::INFINITY;
            let spacing = 1.0 / (p.wavenumber).max(1.0);
            for i in 0..p.droplets {
                let z0 = (p.jet_velocity * p.t_pinch).min(0.95) - i as f64 * spacing;
                let z = (z0 + p.jet_velocity * dt * (1.0 - 0.08 * i as f64)).min(0.98);
                let r = p.jet_radius * (1.25 - 0.1 * i as f64);
                let dd =
                    ((x[0] - p.axis[0]).powi(2) + (x[1] - p.axis[1]).powi(2) + (x[2] - z).powi(2))
                        .sqrt()
                        - r;
                d = d.min(dd);
                // Satellite between this primary and the next.
                if i + 1 < p.droplets {
                    let zs = z - 0.5 * spacing;
                    let rs = p.jet_radius * p.satellite_ratio;
                    let ds = ((x[0] - p.axis[0]).powi(2)
                        + (x[1] - p.axis[1]).powi(2)
                        + (x[2] - zs).powi(2))
                    .sqrt()
                        - rs;
                    d = d.min(ds);
                }
            }
            d
        }
    }

    /// Volume-of-fluid fraction: a smoothed Heaviside of `phi` over a
    /// band of width `eps` (the cell size at the evaluation point).
    pub fn vof(&self, x: [f64; 3], t: f64, eps: f64) -> f64 {
        let p = self.phi(x, t);
        if p < -eps {
            1.0
        } else if p > eps {
            0.0
        } else {
            0.5 * (1.0 - p / eps - (std::f64::consts::PI * p / eps).sin() / std::f64::consts::PI)
        }
    }

    /// Is any liquid present near `x` at `t` within distance `band`?
    pub fn near_interface(&self, x: [f64; 3], t: f64, band: f64) -> bool {
        self.phi(x, t).abs() < band
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iface() -> DropletEjection {
        DropletEjection::default()
    }

    #[test]
    fn jet_interior_is_negative() {
        let f = iface();
        // On the axis near the nozzle, inside the liquid.
        assert!(f.phi([0.5, 0.5, 0.02], 0.2) < 0.0);
        // Far from the axis: gas.
        assert!(f.phi([0.05, 0.05, 0.5], 0.2) > 0.0);
    }

    #[test]
    fn jet_grows_with_time() {
        let f = iface();
        let probe = [0.5, 0.5, 0.35];
        // Early: tip hasn't reached z=0.35.
        assert!(f.phi(probe, 0.1) > 0.0);
        // Later: the jet has passed it.
        assert!(f.phi(probe, 0.4) < 0.0);
    }

    #[test]
    fn pinchoff_produces_disjoint_droplets() {
        let f = iface();
        let t = f.params.t_pinch + 0.1;
        // Scan along the axis: the sign of phi must alternate (liquid,
        // gas, liquid ...) — i.e. more than one connected component.
        let mut sign_changes = 0;
        let mut last_neg = f.phi([0.5, 0.5, 0.01], t) < 0.0;
        for i in 1..200 {
            let z = i as f64 / 200.0;
            let neg = f.phi([0.5, 0.5, z], t) < 0.0;
            if neg != last_neg {
                sign_changes += 1;
            }
            last_neg = neg;
        }
        assert!(sign_changes >= 4, "expected several droplets, got {sign_changes} sign changes");
    }

    #[test]
    fn phi_is_continuousish() {
        let f = iface();
        for &t in &[0.1, 0.3, 0.5, 0.7] {
            for i in 0..50 {
                let z = i as f64 / 50.0;
                let a = f.phi([0.45, 0.5, z], t);
                let b = f.phi([0.45, 0.5, z + 1e-4], t);
                assert!((a - b).abs() < 1e-2, "jump at z={z}, t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn vof_bounds_and_monotonicity() {
        let f = iface();
        for i in 0..100 {
            let x = [0.5, 0.3 + i as f64 * 0.004, 0.1];
            let v = f.vof(x, 0.3, 0.02);
            assert!((0.0..=1.0).contains(&v));
        }
        // Deep inside: 1; far outside: 0.
        assert_eq!(f.vof([0.5, 0.5, 0.02], 0.3, 0.01), 1.0);
        assert_eq!(f.vof([0.1, 0.1, 0.9], 0.3, 0.01), 0.0);
    }

    #[test]
    fn interface_moves_between_steps() {
        // The refinement target must change over time (this is what
        // drives octant churn / the overlap ratio of Fig. 3).
        let f = iface();
        let band = 0.03;
        let probe = [0.5, 0.5 + f.params.jet_radius, 0.25];
        let near_early = f.near_interface(probe, 0.28, band);
        let near_late = f.near_interface(probe, 0.9, band);
        assert!(near_early != near_late, "interface should move off the probe");
    }
}
