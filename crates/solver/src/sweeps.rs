//! Finite-volume-style solver sweeps over the mesh.
//!
//! These produce the read/write mix the paper measured for the droplet
//! workload (writes are 41% of accesses on average, up to 72% in
//! interface-heavy steps): an advection/field update concentrated near
//! the interface, plus pressure relaxation passes.

use pmoctree_amr::{Cell, OctreeBackend};

use crate::interface::DropletEjection;

/// Width of the maintained level-set band (absolute, in domain units —
/// roughly one jet radius).
pub const NARROW_BAND: f64 = 0.05;

/// Update `phi`/`vof` on every leaf from the interface position at `t`
/// (the outcome of Gerris' VOF advection step). Only leaves whose value
/// actually changes are written — field updates are localized around the
/// moving interface. Returns the number of leaves written.
pub fn advect(b: &mut dyn OctreeBackend, interface: &DropletEjection, t: f64) -> usize {
    let mut written = 0usize;
    b.update_leaves(&mut |k, d: &Cell| {
        let h = k.extent();
        // Narrow-band level set: phi is only maintained within a fixed
        // absolute band around the interface; cells beyond it store the
        // saturated value ±NARROW_BAND, which does not change while the
        // interface stays away — so far-field cells are read but not
        // written, exactly like a real VOF/level-set advection.
        let phi = interface.phi(k.center(), t).clamp(-NARROW_BAND, NARROW_BAND);
        let vof = interface.vof(k.center(), t, h);
        let changed = (d[0] - phi).abs() > 1e-6 * h || (d[2] - vof).abs() > 1e-9;
        if changed {
            written += 1;
            Some([phi, d[1], vof, d[3]])
        } else {
            None
        }
    });
    written
}

/// `iters` Jacobi-style pressure relaxation passes. Interface cells (with
/// mixed VOF) converge towards the capillary pressure jump; pure cells
/// relax towards zero. Cheap per cell, touching every leaf — this is the
/// read-heavy "solve" component.
pub fn relax_pressure(b: &mut dyn OctreeBackend, iters: usize) -> usize {
    let mut writes = 0usize;
    for _ in 0..iters {
        b.update_leaves(&mut |_k, d: &Cell| {
            let target = if d[2] > 0.01 && d[2] < 0.99 {
                // Young–Laplace-ish jump scaled by the local VOF gradient proxy.
                2.0 * (d[2] - 0.5).abs()
            } else {
                0.0
            };
            let p_new = 0.5 * d[1] + 0.5 * target;
            // Absolute convergence floor: once a cell is near its target
            // it stops being written (otherwise the geometric decay would
            // rewrite every cell forever and destroy the cross-version
            // sharing the multi-version design relies on).
            if (p_new - d[1]).abs() > 1e-6 {
                writes += 1;
                Some([d[0], p_new, d[2], d[3]])
            } else {
                None
            }
        });
    }
    writes
}

/// Neighbor-coupled relaxation: each leaf averages with its face
/// neighbors' pressure, Gauss–Seidel style in Z-order. Exercises neighbor
/// resolution heavily — formerly one `containing_leaf` root descent plus
/// one payload read *per neighbor per leaf*; now the whole sweep is one
/// leaf enumeration (each payload read exactly once from its tier) plus a
/// single batched neighbor resolution against the sorted leaf index. Used
/// by ablation benches; the plain [`relax_pressure`] is the default
/// per-step solve.
pub fn relax_pressure_neighbors(b: &mut dyn OctreeBackend) -> usize {
    // Snapshot the leaves in Z-order: keys and payloads, read once.
    let order = b.leaf_keys_sorted();
    let mut data = b.get_data_many(&order);
    // Resolve every leaf's face neighborhood in one batched merge-scan.
    let neighborhoods = b.neighbor_leaves_many(&order, false);
    let mut writes = 0usize;
    for i in 0..order.len() {
        let Some(d) = data[i] else { continue };
        let mut sum = d[1];
        let mut n = 1.0;
        for leaf in &neighborhoods[i] {
            // Gauss–Seidel: read the working copy, which already holds
            // this sweep's updates for Z-order-earlier neighbors.
            if let Ok(j) = order.binary_search(leaf) {
                if let Some(nd) = data[j] {
                    sum += nd[1];
                    n += 1.0;
                }
            }
        }
        let p_new = sum / n;
        if (p_new - d[1]).abs() > 1e-12 {
            data[i] = Some([d[0], p_new, d[2], d[3]]);
            let _ = b.set_data(order[i], [d[0], p_new, d[2], d[3]]);
            writes += 1;
        }
    }
    writes
}

/// Record per-leaf work estimates (partitioning weights): interface
/// cells cost several times a bulk cell.
pub fn estimate_work(b: &mut dyn OctreeBackend) {
    b.update_leaves(&mut |_k, d: &Cell| {
        let w = if d[2] > 0.01 && d[2] < 0.99 { 4.0 } else { 1.0 };
        if (d[3] - w).abs() > 1e-12 {
            Some([d[0], d[1], d[2], w])
        } else {
            None
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmoctree_amr::{construct_uniform, InCoreBackend};

    #[test]
    fn advect_writes_near_interface_only() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 4);
        let f = DropletEjection::default();
        let w1 = advect(&mut b, &f, 0.3);
        assert!(w1 > 0);
        // Re-advection at the same time writes (almost) nothing.
        let w2 = advect(&mut b, &f, 0.3);
        assert_eq!(w2, 0, "idempotent advection must not rewrite");
        // A later time rewrites only the band that moved.
        let w3 = advect(&mut b, &f, 0.35);
        assert!(w3 > 0 && w3 < b.leaf_count(), "moved band: {w3} of {}", b.leaf_count());
    }

    #[test]
    fn relaxation_converges() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 3);
        advect(&mut b, &DropletEjection::default(), 0.3);
        relax_pressure(&mut b, 50);
        // Bulk cells end up at ~0 pressure; interface cells at their jump.
        b.for_each_leaf(&mut |_, d| {
            if d[2] == 0.0 || d[2] == 1.0 {
                assert!(d[1].abs() < 1e-3, "bulk pressure {}", d[1]);
            }
        });
        // Converged: further iterations write nothing much.
        let w = relax_pressure(&mut b, 1);
        let leaves = b.leaf_count();
        assert!(w < leaves / 10, "{w} writes after convergence");
    }

    #[test]
    fn neighbor_relaxation_smooths() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 2);
        // A pressure spike in one cell.
        let mut first = None;
        b.for_each_leaf(&mut |k, _| {
            if first.is_none() {
                first = Some(k);
            }
        });
        let k = first.unwrap();
        b.set_data(k, [0.0, 64.0, 0.0, 0.0]).unwrap();
        relax_pressure_neighbors(&mut b);
        let spiked = b.get_data(k).unwrap()[1];
        assert!(spiked < 64.0, "spike must diffuse, got {spiked}");
        // Total pressure should be conserved-ish (diffusion): some
        // neighbor gained pressure.
        let mut max_other = 0.0f64;
        b.for_each_leaf(&mut |kk, d| {
            if kk != k {
                max_other = max_other.max(d[1]);
            }
        });
        assert!(max_other > 0.0);
    }

    #[test]
    fn write_fraction_realistic() {
        // The §1 claim: meshing + solving is write-intensive (41% average).
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 4);
        let f = DropletEjection::default();
        for step in 0..5 {
            let t = 0.25 + step as f64 * 0.05;
            advect(&mut b, &f, t);
            relax_pressure(&mut b, 2);
        }
        let frac = b.tree.stats.overall_write_fraction();
        assert!((0.05..0.8).contains(&frac), "write fraction {frac} outside plausible range");
    }

    #[test]
    fn work_estimates_weight_interface() {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, 4);
        advect(&mut b, &DropletEjection::default(), 0.3);
        estimate_work(&mut b);
        let mut heavy = 0usize;
        let mut light = 0usize;
        b.for_each_leaf(&mut |_, d| {
            if d[3] == 4.0 {
                heavy += 1;
            } else if d[3] == 1.0 {
                light += 1;
            }
        });
        assert!(heavy > 0 && light > heavy, "heavy={heavy} light={light}");
    }
}
