//! Whole-application persistence: crash anywhere, resume the *run*.
//!
//! `pm-octree` alone recovers the mesh; everything else a run is made of
//! (config, step index, accumulated timing breakdowns) lived in volatile
//! DRAM, so a crash still lost the simulation. This module closes that
//! gap with the `pm-rt` orthogonal-persistence runtime: at every persist
//! point the full [`RunState`] is staged into the runtime and committed
//! by `pm-rt`'s atomic root-table swap, *inside* the octree's persist
//! protocol (after the tree's root swap, before GC — see
//! [`PmOctree::persist_with_hook`]). A run killed at **any** crash
//! opportunity — including mid-persist — resumes from the last combined
//! commit and produces a byte-identical final [`RunReport`].
//!
//! Determinism contract (what makes the resumed report *byte*-identical,
//! not just close):
//!
//! * the persisted `pm_cfg` is canonicalized ([`canonical_pm_cfg`]):
//!   `seed_c0` off (a resumed tree necessarily starts with an empty DRAM
//!   forest, so the original must too) and `dynamic_transform` off (the
//!   transform migrates octants based on access history the resumed run
//!   does not have);
//! * the leaf index is invalidated after every combined persist
//!   ([`PmOctree::invalidate_leaf_index`]) so both runs rebuild it at the
//!   same points;
//! * each step's `persist_ns` is measured *at the commit hook* and staged
//!   into the persisted state itself; the trailing cost of the runtime
//!   commit, GC, replica ship and re-attach is deliberately unattributed
//!   in both runs (octant and blob placement is cacheline-aligned, so
//!   every charged cost is independent of where a resumed run's
//!   allocations happen to land).

use pm_octree::{PmConfig, PmError, PmOctree};
use pm_rt::{ByteReader, PmData, PmRt, RtError};
use pmoctree_amr::PmBackend;
use pmoctree_nvbm::{NvbmArena, POffset};

use crate::driver::{RunReport, SimConfig, Simulation, StepBreakdown};

/// The `pm-rt` tenant namespace the solver owns.
pub const RUN_TENANT: &str = "solver";

/// The root (inside [`RUN_TENANT`]) the run state lives under.
pub const RUN_ROOT: &str = "run";

/// Everything needed to resume a run, as one persistent object.
#[derive(Debug, Clone, PartialEq)]
pub struct RunState {
    /// The simulation configuration of the original run.
    pub cfg: SimConfig,
    /// Next step to execute (steps `0..next_step` are complete).
    pub next_step: u64,
    /// Breakdowns of the completed steps, including the step whose
    /// persist committed this state (its `persist_ns` is the value
    /// measured at the commit hook).
    pub steps: Vec<StepBreakdown>,
    /// The tree root this state pairs with. Restoring *at this root*
    /// (not at whatever the header names) keeps mesh and run state
    /// consistent even when a crash lands between the two root swaps.
    pub tree_root: u64,
}

impl PmData for StepBreakdown {
    fn encode(&self, out: &mut Vec<u8>) {
        self.refine_ns.encode(out);
        self.balance_ns.encode(out);
        self.solve_ns.encode(out);
        self.persist_ns.encode(out);
        (self.leaves as u64).encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError> {
        Ok(StepBreakdown {
            refine_ns: u64::decode(r)?,
            balance_ns: u64::decode(r)?,
            solve_ns: u64::decode(r)?,
            persist_ns: u64::decode(r)?,
            leaves: u64::decode(r)? as usize,
        })
    }
}

impl PmData for RunState {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.cfg.steps as u64).encode(out);
        self.cfg.t0.encode(out);
        self.cfg.dt.encode(out);
        (self.cfg.max_level as u32).encode(out);
        (self.cfg.base_level as u32).encode(out);
        self.cfg.band_cells.encode(out);
        (self.cfg.relax_iters as u64).encode(out);
        self.next_step.encode(out);
        self.steps.encode(out);
        self.tree_root.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, RtError> {
        let cfg = SimConfig {
            steps: u64::decode(r)? as usize,
            t0: f64::decode(r)?,
            dt: f64::decode(r)?,
            max_level: u32::decode(r)? as u8,
            base_level: u32::decode(r)? as u8,
            band_cells: f64::decode(r)?,
            relax_iters: u64::decode(r)? as usize,
        };
        Ok(RunState {
            cfg,
            next_step: u64::decode(r)?,
            steps: Vec::<StepBreakdown>::decode(r)?,
            tree_root: u64::decode(r)?,
        })
    }
}

/// A finished (or resumed-and-finished) persistent run.
pub struct PersistentRun {
    /// The run's report — byte-identical whether or not the run crashed.
    pub report: RunReport,
    /// The backend, holding the arena (for crash injection / inspection).
    pub backend: PmBackend,
    /// The runtime, holding the committed run state.
    pub rt: PmRt,
    /// `Some(step)` if this run resumed an earlier one at `step`.
    pub resumed_at: Option<usize>,
}

/// Force the config choices whole-run determinism depends on (see the
/// module docs). Everything else is the caller's.
pub fn canonical_pm_cfg(pm_cfg: PmConfig) -> PmConfig {
    PmConfig { seed_c0: false, dynamic_transform: false, ..pm_cfg }
}

/// Run the droplet simulation from scratch with whole-application
/// persistence: every persist point commits mesh *and* run state.
pub fn run_persistent(
    cfg: SimConfig,
    pm_cfg: PmConfig,
    arena: NvbmArena,
) -> Result<PersistentRun, PmError> {
    let (mut backend, mut rt, done) = run_persistent_partial(cfg, pm_cfg, arena, cfg.steps)?;
    let sim = Simulation::new(cfg);
    let report = drive(&sim, &mut backend, &mut rt, done.len(), cfg.steps, done)?;
    Ok(PersistentRun { report, backend, rt, resumed_at: None })
}

/// Run only the first `until_step` steps of a persistent run and hand
/// back the live pieces mid-flight. This is the staging primitive for
/// failure experiments (cluster, bench): run part of the way, kill the
/// node, and exercise whole-application recovery from whatever survived.
pub fn run_persistent_partial(
    cfg: SimConfig,
    pm_cfg: PmConfig,
    arena: NvbmArena,
    until_step: usize,
) -> Result<(PmBackend, PmRt, Vec<StepBreakdown>), PmError> {
    let tree = PmOctree::create(arena, canonical_pm_cfg(pm_cfg));
    let mut backend = PmBackend::new(tree);
    let mut rt = PmRt::create(&mut backend.tree.store.arena)?;
    let sim = Simulation::new(cfg);
    sim.construct(&mut backend);
    let report = drive(&sim, &mut backend, &mut rt, 0, until_step.min(cfg.steps), Vec::new())?;
    Ok((backend, rt, report.steps))
}

/// Outcome of [`reattach`]. Constructed once per reattach, so the size
/// gap between a restored session and a bare boxed arena is harmless.
#[allow(clippy::large_enum_variant)]
pub enum Reattach {
    /// A combined commit exists: backend and runtime are restored and
    /// ready to step at `state.next_step`. The backend is boxed to keep
    /// the enum small next to the bare-arena variant.
    Resumable(Box<PmBackend>, PmRt, RunState),
    /// No combined commit ever happened — nothing to resume. The arena
    /// comes back (boxed, same reason) so the caller can start a fresh
    /// run on the device.
    Nothing(Box<NvbmArena>),
}

/// Reattach to a crashed device: restore the runtime, read the committed
/// [`RunState`], and restore the tree *at the root the state pairs with*.
/// The arena's virtual clock measures the whole-application restart
/// latency: it starts at zero in the cold process, so
/// `backend.elapsed_ns()` on [`Reattach::Resumable`] *is* the restart
/// cost.
pub fn reattach(mut arena: NvbmArena, pm_cfg: PmConfig) -> Result<Reattach, PmError> {
    let restored = match PmRt::restore(&mut arena) {
        Ok(mut rt) => {
            let state = rt.session(&mut arena).tenant(RUN_TENANT)?.get::<RunState>(RUN_ROOT)?;
            state.map(|s| (rt, s))
        }
        Err(PmError::NotFound(_)) => None,
        Err(e) => return Err(e),
    };
    let Some((rt, state)) = restored else {
        return Ok(Reattach::Nothing(Box::new(arena)));
    };
    let tree = PmOctree::restore_at(arena, POffset(state.tree_root), canonical_pm_cfg(pm_cfg))?;
    Ok(Reattach::Resumable(Box::new(PmBackend::new(tree)), rt, state))
}

/// Resume a crashed persistent run from its arena (same-node `pm_restore`
/// of the whole application). If the crash predates the first combined
/// commit there is nothing to resume: the run starts over from scratch on
/// the same device — which yields the identical report, since a fresh
/// create re-formats and every cost is placement-independent. `cfg` is
/// only used for that fresh-start case; a committed [`RunState`] carries
/// its own.
pub fn resume_persistent(
    arena: NvbmArena,
    cfg: SimConfig,
    pm_cfg: PmConfig,
) -> Result<PersistentRun, PmError> {
    let (mut backend, mut rt, state) = match reattach(arena, pm_cfg)? {
        Reattach::Resumable(b, rt, state) => (*b, rt, state),
        // Crash before the first combined commit: nothing to resume.
        // Start over on the same device — a fresh create re-formats it.
        Reattach::Nothing(arena) => return run_persistent(cfg, pm_cfg, *arena),
    };
    let sim = Simulation::new(state.cfg);
    let resumed_at = state.next_step as usize;
    let report = drive(&sim, &mut backend, &mut rt, resumed_at, state.cfg.steps, state.steps)?;
    Ok(PersistentRun { report, backend, rt, resumed_at: Some(resumed_at) })
}

/// Execute steps `from_step..until_step` with the combined persist, on
/// top of the already-completed breakdowns in `done`. `until_step` is
/// `cfg.steps` for a full run; tests stop early to stage crash images.
fn drive(
    sim: &Simulation,
    backend: &mut PmBackend,
    rt: &mut PmRt,
    from_step: usize,
    until_step: usize,
    mut done: Vec<StepBreakdown>,
) -> Result<RunReport, PmError> {
    for s in from_step..until_step {
        let mut rt_failure: Option<PmError> = None;
        let bd = {
            let done_ref = &done;
            let rt_ref = &mut *rt;
            let rt_failure = &mut rt_failure;
            sim.step_core(backend, s, move |b, partial, t3| {
                let mut staged: Option<u64> = None;
                let cfg = sim.cfg;
                let committed = b.tree.persist_with_hook(&mut |arena| {
                    // Everything from the persist entry to this hook —
                    // merge, flush, root swap — is the step's attributed
                    // persistence cost; stage it into the state itself so
                    // the resumed run reports the very same number.
                    let persist_ns = arena.clock.now_ns() - t3;
                    let mut steps = done_ref.clone();
                    steps.push(StepBreakdown { persist_ns, ..*partial });
                    let state = RunState {
                        cfg,
                        next_step: s as u64 + 1,
                        steps,
                        tree_root: arena.root(1).0,
                    };
                    let mut tenant = rt_ref.session(arena).tenant(RUN_TENANT)?;
                    tenant.put(RUN_ROOT, &state)?;
                    let regions = tenant.commit()?;
                    staged = Some(persist_ns);
                    Ok(regions)
                });
                if let Err(e) = committed {
                    *rt_failure = Some(e);
                }
                // Both the original and the resumed run cross every
                // persist point with a cold index (see module docs).
                b.tree.invalidate_leaf_index();
                staged
            })
        };
        if let Some(e) = rt_failure {
            return Err(e);
        }
        done.push(bd);
    }
    Ok(RunReport { steps: done })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmoctree_nvbm::{CrashMode, DeviceModel, FailPlan};

    const ARENA: usize = 48 << 20;

    fn cfg() -> SimConfig {
        SimConfig { steps: 4, max_level: 4, base_level: 2, ..SimConfig::default() }
    }

    fn arena() -> NvbmArena {
        NvbmArena::new(ARENA, DeviceModel::default())
    }

    fn report_fingerprint(r: &RunReport) -> Vec<(u64, u64, u64, u64, usize)> {
        r.steps
            .iter()
            .map(|s| (s.refine_ns, s.balance_ns, s.solve_ns, s.persist_ns, s.leaves))
            .collect()
    }

    #[test]
    fn persistent_run_matches_plain_run_shape() {
        let run = run_persistent(cfg(), PmConfig::default(), arena()).unwrap();
        assert_eq!(run.report.steps.len(), cfg().steps);
        assert!(run.report.total_secs() > 0.0);
        assert_eq!(run.rt.epoch(), cfg().steps as u64 + 1, "one commit per step plus create");
    }

    #[test]
    fn crash_at_step_boundary_resumes_identically() {
        let baseline = run_persistent(cfg(), PmConfig::default(), arena()).unwrap();
        // Drive only 2 of the 4 steps, power-fail (lose every dirty
        // line), hand the dead node's media to a cold process, resume,
        // and compare reports field by field.
        let mut b =
            PmBackend::new(PmOctree::create(arena(), canonical_pm_cfg(PmConfig::default())));
        let mut rt = PmRt::create(&mut b.tree.store.arena).unwrap();
        let sim = Simulation::new(cfg());
        sim.construct(&mut b);
        drive(&sim, &mut b, &mut rt, 0, 2, Vec::new()).unwrap();
        b.tree.store.arena.crash(CrashMode::LoseDirty);
        let media = b.tree.store.arena.clone_media();
        let crashed = NvbmArena::from_media(media, DeviceModel::default());
        let resumed = resume_persistent(crashed, cfg(), PmConfig::default()).unwrap();
        assert_eq!(resumed.resumed_at, Some(2));
        assert_eq!(report_fingerprint(&resumed.report), report_fingerprint(&baseline.report));
    }

    #[test]
    fn crash_before_first_commit_restarts_identically() {
        let baseline = run_persistent(cfg(), PmConfig::default(), arena()).unwrap();
        // Crash a fresh arena that never reached a combined commit.
        let mut a = arena();
        let _rt = PmRt::create(&mut a).unwrap();
        a.crash(CrashMode::LoseDirty);
        let crashed = NvbmArena::from_media(a.clone_media(), DeviceModel::default());
        let rerun = resume_persistent(crashed, cfg(), PmConfig::default()).unwrap();
        assert_eq!(rerun.resumed_at, None);
        assert_eq!(report_fingerprint(&rerun.report), report_fingerprint(&baseline.report));
    }

    #[test]
    fn crash_at_every_labelled_opportunity_of_one_step_resumes_identically() {
        let baseline = run_persistent(cfg(), PmConfig::default(), arena()).unwrap();
        let fp = report_fingerprint(&baseline.report);
        // Drive two steps, then enumerate step 3's crash opportunities
        // and resume from a capture at each labelled one (cheaper than
        // all ~10^4 of them; the bench sweep covers the rest).
        let stage = || {
            let mut b =
                PmBackend::new(PmOctree::create(arena(), canonical_pm_cfg(PmConfig::default())));
            let mut rt = PmRt::create(&mut b.tree.store.arena).unwrap();
            let sim = Simulation::new(cfg());
            sim.construct(&mut b);
            drive(&sim, &mut b, &mut rt, 0, 2, Vec::new()).unwrap();
            (b, rt)
        };
        let sim = Simulation::new(cfg());
        let (mut b, mut rt) = stage();
        b.tree.store.arena.set_fail_plan(FailPlan::count());
        drive(&sim, &mut b, &mut rt, 2, 3, baseline.report.steps[..2].to_vec()).unwrap();
        let plan = b.tree.store.arena.take_fail_plan().unwrap();
        let labelled: Vec<u64> = plan.labels().iter().map(|&(at, _)| at).collect();
        assert!(
            plan.labels().iter().any(|(_, l)| *l == "rt::commit"),
            "combined persist must expose the rt::commit failpoint"
        );
        for at in labelled {
            let (mut b, mut rt) = stage();
            b.tree.store.arena.set_fail_plan(FailPlan::armed(at, CrashMode::LoseDirty));
            drive(&sim, &mut b, &mut rt, 2, 3, baseline.report.steps[..2].to_vec()).unwrap();
            let mut plan = b.tree.store.arena.take_fail_plan().unwrap();
            let cap = plan.take_capture().expect("armed opportunity fired");
            let crashed = NvbmArena::from_media(cap.media, DeviceModel::default());
            let resumed = resume_persistent(crashed, cfg(), PmConfig::default()).unwrap();
            assert_eq!(
                report_fingerprint(&resumed.report),
                fp,
                "crash at opportunity {at} must resume to the baseline report"
            );
        }
    }
}
