//! Refinement criteria and feature functions for the droplet workload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pm_octree::FeatureFn;
use pmoctree_amr::{AdaptCriterion, Cell, Target};
use pmoctree_morton::OctKey;

use crate::interface::DropletEjection;

/// Shared simulation time, readable from `Send` feature-function
/// closures (stored as f64 bits in an atomic).
#[derive(Clone, Default)]
pub struct SharedTime(Arc<AtomicU64>);

impl SharedTime {
    /// New clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the current simulation time.
    pub fn set(&self, t: f64) {
        self.0.store(t.to_bits(), Ordering::Relaxed);
    }

    /// Read the current simulation time.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Interface-band refinement criterion evaluated against the *analytic*
/// interface at the current time (Gerris evaluates its refinement
/// condition against the advected VOF field; the analytic form plays the
/// same role here and is what the feature-directed sampler pre-executes).
pub struct InterfaceCriterion {
    /// The interface.
    pub interface: DropletEjection,
    /// Shared simulation time.
    pub time: SharedTime,
    /// Band half-width in cell sizes.
    pub band_cells: f64,
    /// Maximum refinement level.
    pub max_level: u8,
}

impl AdaptCriterion for InterfaceCriterion {
    fn target(&self, key: &OctKey, _data: &Cell) -> Target {
        let t = self.time.get();
        let h = key.extent();
        let d = self.interface.phi(key.center(), t).abs();
        if d < self.band_cells * h {
            Target::Refine
        } else if d > 4.0 * self.band_cells * h {
            Target::Coarsen
        } else {
            Target::Keep
        }
    }

    fn max_level(&self) -> u8 {
        self.max_level
    }
}

/// Build the PM-octree feature function corresponding to the refinement
/// condition (§3.3: "the application features … realized as functions for
/// octant refinement/coarsening"). The closure reads the shared time, so
/// one registration tracks the whole simulation.
pub fn refinement_feature(
    interface: DropletEjection,
    time: SharedTime,
    band_cells: f64,
) -> FeatureFn {
    Box::new(move |key: &OctKey, _data| {
        let t = time.get();
        let h = key.extent();
        interface.phi(key.center(), t).abs() < band_cells * h * 2.0
    })
}

/// A solver-side feature: regions with mixed VOF (the interface cells the
/// pressure solver works hardest on).
pub fn solver_feature() -> FeatureFn {
    Box::new(|_key, data| data.vof > 0.01 && data.vof < 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_time_roundtrip() {
        let t = SharedTime::new();
        assert_eq!(t.get(), 0.0);
        t.set(0.625);
        assert_eq!(t.get(), 0.625);
        let t2 = t.clone();
        t2.set(1.5);
        assert_eq!(t.get(), 1.5, "clones share the clock");
    }

    #[test]
    fn criterion_refines_near_interface() {
        let time = SharedTime::new();
        time.set(0.3);
        let c = InterfaceCriterion {
            interface: DropletEjection::default(),
            time: time.clone(),
            band_cells: 1.0,
            max_level: 6,
        };
        // A cell right on the jet surface wants refinement.
        let on_jet = OctKey::from_coords([4, 4, 1], 3); // center ~ (0.56,0.56,0.19)
        let far = OctKey::from_coords([0, 0, 7], 3);
        assert_eq!(c.target(&on_jet, &[0.0; 4]), Target::Refine);
        assert_eq!(c.target(&far, &[0.0; 4]), Target::Coarsen);
    }

    #[test]
    fn feature_tracks_time() {
        let time = SharedTime::new();
        let f = refinement_feature(DropletEjection::default(), time.clone(), 1.0);
        let probe = OctKey::from_coords([8, 8, 5], 4); // on the jet axis, z ~ 0.34
        time.set(0.05); // jet far below the probe
        let early = f(&probe, &pm_octree::CellData::default());
        time.set(0.42); // jet surface passes the probe region
        let late = f(&probe, &pm_octree::CellData::default());
        assert!(early != late, "feature must follow the moving interface");
    }
}
