//! Property tests for the droplet-ejection workload: the analytic
//! interface is physically sane at every time, and the solver sweeps
//! preserve field invariants on arbitrary meshes.

use pmoctree_amr::{construct_uniform, InCoreBackend, OctreeBackend};
use pmoctree_solver::{advect, relax_pressure, DropletEjection, SimConfig, Simulation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// phi is Lipschitz-ish along rays: finite, bounded by the domain
    /// diagonal, and its sign field encloses a bounded liquid volume.
    #[test]
    fn phi_is_bounded_and_finite(
        x in 0.0f64..1.0, y in 0.0f64..1.0, z in 0.0f64..1.0, t in 0.0f64..1.2,
    ) {
        let f = DropletEjection::default();
        let phi = f.phi([x, y, z], t);
        prop_assert!(phi.is_finite());
        prop_assert!(phi.abs() < 2.0, "phi {phi} unreasonably large");
    }

    /// VOF is a proper fraction and monotone with phi: liquid (phi<-eps)
    /// gives 1, gas (phi>eps) gives 0.
    #[test]
    fn vof_consistent_with_phi(
        x in 0.0f64..1.0, y in 0.0f64..1.0, z in 0.0f64..1.0,
        t in 0.0f64..1.2, eps in 1e-4f64..0.1,
    ) {
        let f = DropletEjection::default();
        let p = f.phi([x, y, z], t);
        let v = f.vof([x, y, z], t, eps);
        prop_assert!((0.0..=1.0).contains(&v));
        if p < -eps {
            prop_assert_eq!(v, 1.0);
        }
        if p > eps {
            prop_assert_eq!(v, 0.0);
        }
    }

    /// The liquid volume (fraction of sample points with phi < 0) stays
    /// physically small — the jet/droplets never flood the domain.
    #[test]
    fn liquid_volume_bounded(t in 0.0f64..1.2, seed in any::<u64>()) {
        let f = DropletEjection::default();
        let mut state = seed | 1;
        let mut rand = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 2000;
        let mut inside = 0usize;
        for _ in 0..n {
            let x = [rand(), rand(), rand()];
            if f.phi(x, t) < 0.0 {
                inside += 1;
            }
        }
        let frac = inside as f64 / n as f64;
        prop_assert!(frac < 0.2, "liquid fills {:.0}% of the domain at t={t}", 100.0 * frac);
    }

    /// Advection is idempotent at fixed t, and pressure relaxation keeps
    /// pressure finite and non-negative-ish on any uniform mesh level.
    #[test]
    fn sweeps_preserve_invariants(level in 1u8..4, t in 0.05f64..1.0, iters in 1usize..6) {
        let mut b = InCoreBackend::new();
        construct_uniform(&mut b, level);
        advect(&mut b, &DropletEjection::default(), t);
        prop_assert_eq!(advect(&mut b, &DropletEjection::default(), t), 0, "advect idempotent");
        relax_pressure(&mut b, iters);
        b.for_each_leaf(&mut |_, d| {
            assert!(d[1].is_finite());
            assert!(d[1] >= -1e-12, "pressure {}", d[1]);
            assert!((0.0..=1.0).contains(&d[2]), "vof {}", d[2]);
        });
    }
}

/// The element count of a full simulation is deterministic: two identical
/// runs produce identical meshes step by step.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let sim = Simulation::new(SimConfig { steps: 5, max_level: 4, ..SimConfig::default() });
        let mut b = InCoreBackend::new();
        let r = sim.run(&mut b);
        r.steps.iter().map(|s| s.leaves).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// Element counts follow the droplet narrative: the mesh grows while the
/// jet extends and pinches, then shrinks as droplets leave a simpler
/// topology behind.
#[test]
fn element_count_follows_the_jet() {
    let sim = Simulation::new(SimConfig {
        steps: 30,
        max_level: 5,
        t0: 0.1,
        dt: 0.04,
        ..SimConfig::default()
    });
    let mut b = InCoreBackend::new();
    let r = sim.run(&mut b);
    let counts: Vec<usize> = r.steps.iter().map(|s| s.leaves).collect();
    let peak = *counts.iter().max().unwrap();
    let first = counts[0];
    let last = *counts.last().unwrap();
    assert!(peak > first, "mesh should grow during ejection: {counts:?}");
    assert!(last < peak, "mesh should shrink after breakup: {counts:?}");
}
