//! Failure-recovery experiments (§5.6).
//!
//! Kill the simulation at a time step, then measure the virtual time to
//! restart it under each scheme and scenario:
//!
//! * **same node** — the crashed node reboots with its NVBM intact.
//!   PM-octree returns `ADDR(V_{i-1})` after one reachability pass;
//!   the in-core baseline re-reads its whole snapshot file; Etree just
//!   re-opens its metadata.
//! * **new node** — the crashed node is gone. PM-octree restores from a
//!   remote replica over the interconnect; the in-core baseline reads
//!   the snapshot from the shared parallel file system (same cost);
//!   Etree cannot recover (its octant database was not replicated).

use pm_octree::{PmConfig, PmOctree};
use pmoctree_amr::{InCoreBackend, PmBackend};
use pmoctree_baselines::InCoreOctree;
use pmoctree_morton::ZRange;
use pmoctree_nvbm::{CrashMode, DeviceModel, NetworkModel, NvbmArena, TraversalStats};
use pmoctree_solver::{
    resume_persistent, run_persistent, run_persistent_partial, SimConfig, Simulation,
};
use serde::Serialize;

use crate::rank::Rank;

/// Recovery timings for one scheme, in virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RecoveryReport {
    /// Scheme name.
    pub scheme: &'static str,
    /// Restart on the same (rebooted) node.
    pub same_node_secs: f64,
    /// Restart replacing the crashed node; `None` = unrecoverable.
    pub new_node_secs: Option<f64>,
    /// Elements recovered.
    pub elements: usize,
    /// Octant-location counters of the pre-crash run.
    pub trav: TraversalStats,
}

/// The PM configuration the recovery experiment crashes under — and must
/// restore under: a restored tree silently running different knobs than
/// the one that crashed would invalidate the recovered timings.
fn pm_experiment_config() -> PmConfig {
    PmConfig { dynamic_transform: false, replicas: true, ..PmConfig::default() }
}

/// Run the PM-octree recovery experiment: simulate `steps_before_kill`
/// steps, crash, restore. Uses replicas for the new-node scenario.
pub fn pm_recovery(cfg: SimConfig, steps_before_kill: usize, arena_bytes: usize) -> RecoveryReport {
    pm_recovery_detailed(cfg, steps_before_kill, arena_bytes).0
}

/// [`pm_recovery`] plus the configs the two restored trees actually run
/// under (same-node, new-node) so tests can pin them to the pre-crash
/// config.
fn pm_recovery_detailed(
    cfg: SimConfig,
    steps_before_kill: usize,
    arena_bytes: usize,
) -> (RecoveryReport, PmConfig, PmConfig) {
    let sim = Simulation::new(cfg);
    let pm_cfg = pm_experiment_config();
    let mut b = PmBackend::new(PmOctree::create(
        NvbmArena::new(arena_bytes, DeviceModel::default()),
        pm_cfg,
    ));
    sim.construct(&mut b);
    for s in 0..steps_before_kill {
        sim.step(&mut b, s);
    }
    let replica = b.tree.replicas.clone().expect("replicas enabled");
    let elements = b.tree.leaf_count();
    let trav = b.tree.store.arena.stats.trav;
    // Kill: volatile state is gone, dirty lines lost.
    let PmBackend { tree } = b;
    let mut arena = tree.store.arena;
    arena.crash(CrashMode::LoseDirty);

    // Scenario 1: same node. Recovery = header read + reachability pass.
    // Restore under the *pre-crash* config: the rebooted process would
    // read its knobs from the same job script that launched the run.
    let t0 = arena.clock.now_ns();
    let restored = match PmOctree::restore(arena, pm_cfg) {
        Ok(t) => t,
        Err(e) => panic!("same-node recovery after clean kill must succeed: {e}"),
    };
    let same_node_secs = (restored.store.arena.clock.now_ns() - t0) as f64 * 1e-9;

    // Scenario 2: new node. The replica image crosses the §5.6
    // InfiniBand network, then the same restore runs locally — again
    // under the pre-crash config.
    let net = NetworkModel::infiniband_fdr();
    let fresh = NvbmArena::new(arena_bytes, DeviceModel::default());
    let (restored2, moved) = match PmOctree::restore_from_replica(fresh, &replica, pm_cfg) {
        Ok(r) => r,
        Err(e) => panic!("replica recovery must succeed: {e}"),
    };
    let transfer_secs = net.transfer_ns(moved) as f64 * 1e-9;
    let restore2_secs = restored2.store.arena.clock.now_ns() as f64 * 1e-9;
    let report = RecoveryReport {
        scheme: "pm-octree",
        same_node_secs,
        new_node_secs: Some(transfer_secs + restore2_secs),
        elements,
        trav,
    };
    (report, restored.cfg, restored2.cfg)
}

/// In-core baseline recovery: re-read the latest snapshot file.
pub fn incore_recovery(cfg: SimConfig, steps_before_kill: usize) -> RecoveryReport {
    let sim = Simulation::new(cfg);
    let mut b = InCoreBackend::new();
    b.snapshot_interval = 10;
    sim.construct(&mut b);
    for s in 0..steps_before_kill {
        sim.step(&mut b, s);
    }
    // Make sure a snapshot exists (the paper snapshots every 10 steps;
    // kill at step 20 guarantees one).
    let last_snap = (steps_before_kill / b.snapshot_interval) * b.snapshot_interval;
    let name = format!("snapshot-{last_snap}.gfs");
    if !b.fs.exists(&name) {
        b.tree.snapshot(&mut b.fs, &name);
    }
    let elements = b.tree.leaf_count();
    let trav = b.tree.stats.trav;
    // Kill: DRAM gone; only the snapshot file survives. Recovery time =
    // file read + tree rebuild.
    let InCoreBackend { mut fs, .. } = b;
    let t0 = fs.clock.now_ns();
    let restored = InCoreOctree::restore(&mut fs, &name).expect("snapshot readable");
    let io_secs = (fs.clock.now_ns() - t0) as f64 * 1e-9;
    let rebuild_secs = restored.clock.now_ns() as f64 * 1e-9;
    RecoveryReport {
        scheme: "in-core",
        same_node_secs: io_secs + rebuild_secs,
        // Snapshot lives on the shared PFS: same cost from any node.
        new_node_secs: Some(io_secs + rebuild_secs),
        elements: restored.leaf_count(),
        trav,
    }
    .with_elements(elements)
}

impl RecoveryReport {
    fn with_elements(mut self, n: usize) -> Self {
        self.elements = self.elements.max(n);
        self
    }
}

/// Etree recovery: reopen the octant database (metadata only).
pub fn etree_recovery(cfg: SimConfig, steps_before_kill: usize) -> RecoveryReport {
    let sim = Simulation::new(cfg);
    let mut b = pmoctree_amr::EtreeBackend::on_nvbm();
    sim.construct(&mut b);
    for s in 0..steps_before_kill {
        sim.step(&mut b, s);
    }
    b.tree.flush();
    let elements = b.tree.leaf_count();
    let trav = b.tree.stats.trav;
    let pmoctree_amr::EtreeBackend { tree, .. } = b;
    let pmoctree_baselines::EtreeOctree { fs, .. } = tree;
    // The index pages persist in the file system; a reopen rebuilds the
    // handle from metadata. We model the index as re-created from its
    // file, which is the dominant reopen cost.
    let mut fs = fs;
    let t0 = fs.clock.now_ns();
    let meta_ok = fs.read_all("etree.meta").is_ok();
    assert!(meta_ok);
    let same = (fs.clock.now_ns() - t0) as f64 * 1e-9;
    RecoveryReport {
        scheme: "out-of-core",
        same_node_secs: same,
        new_node_secs: None, // not replicated (§5.6 second scenario)
        elements,
        trav,
    }
}

/// Whole-application recovery with the `pm-rt` runtime: not just the
/// mesh but the *run* (config, step index, timing history) comes back.
#[derive(Debug, Clone, Serialize)]
pub struct RtRecoveryReport {
    /// Step the resumed run continues at (steps completed pre-kill).
    pub resumed_step: usize,
    /// Same-node whole-application restart: runtime swizzle + run-state
    /// read + tree reattach, in virtual seconds.
    pub same_node_restart_secs: f64,
    /// New-node restart: replica transfer over the interconnect plus the
    /// same local restart, in virtual seconds.
    pub new_node_restart_secs: f64,
    /// Mesh elements at the resume point.
    pub elements: usize,
    /// Whether the resumed run (same node *and* resurrected node) drove
    /// to completion with a report identical to the uncrashed run's.
    pub report_identical: bool,
}

/// Kill a whole-application persistent run after `steps_before_kill`
/// steps and bring the *rank* back twice: on the rebooted node (NVBM
/// intact minus dirty lines) and on a fresh node from the replica (whose
/// deltas carried the `pm-rt` root bundle along with the octants).
pub fn rt_recovery(
    cfg: SimConfig,
    steps_before_kill: usize,
    arena_bytes: usize,
) -> RtRecoveryReport {
    let pm_cfg = pm_experiment_config();
    // The uncrashed reference run.
    let baseline = run_persistent(cfg, pm_cfg, NvbmArena::new(arena_bytes, DeviceModel::default()))
        .expect("baseline persistent run");
    // The victim: identical run killed mid-flight.
    let (mut b, _rt, _done) = run_persistent_partial(
        cfg,
        pm_cfg,
        NvbmArena::new(arena_bytes, DeviceModel::default()),
        steps_before_kill,
    )
    .expect("staged persistent run");
    let replica = b.tree.replicas.clone().expect("replicas enabled");
    b.tree.store.arena.crash(CrashMode::LoseDirty);
    let media = b.tree.store.arena.clone_media();

    // Same node: a cold process reattaches to the surviving device. The
    // virtual clock starts at zero, so elapsed time after reattach is the
    // whole-application restart latency.
    let cold = NvbmArena::from_media(media.clone(), DeviceModel::default());
    let (restart_ns, elements, resumed_step) =
        match pmoctree_solver::reattach(cold, pm_cfg).expect("same-node reattach") {
            pmoctree_solver::Reattach::Resumable(backend, _rt, state) => (
                backend.tree.store.arena.clock.now_ns(),
                backend.tree.leaf_count(),
                state.next_step as usize,
            ),
            pmoctree_solver::Reattach::Nothing(_) => {
                panic!("combined commits exist after {steps_before_kill} steps")
            }
        };

    // New node: the replica image crosses the interconnect and the rank
    // is resurrected whole.
    let net = NetworkModel::infiniband_fdr();
    let (rank, _rt2, state2, moved) =
        Rank::resurrect_from_replica(0, ZRange::all(), arena_bytes, &replica, pm_cfg)
            .expect("replica resurrection");
    let new_node_ns = rank.backend.elapsed_ns() + net.transfer_ns(moved);
    assert_eq!(state2.next_step as usize, resumed_step, "replica carries the same commit");

    // Both crash copies must drive to the uncrashed run's exact report.
    let same = resume_persistent(NvbmArena::from_media(media, DeviceModel::default()), cfg, pm_cfg)
        .expect("same-node resume");
    let mut from_replica = NvbmArena::new(arena_bytes, DeviceModel::default());
    from_replica.restore_media(replica.image());
    let newn = resume_persistent(from_replica, cfg, pm_cfg).expect("new-node resume");
    let report_identical =
        same.report.steps == baseline.report.steps && newn.report.steps == baseline.report.steps;

    RtRecoveryReport {
        resumed_step,
        same_node_restart_secs: restart_ns as f64 * 1e-9,
        new_node_restart_secs: new_node_ns as f64 * 1e-9,
        elements,
        report_identical,
    }
}

/// Run all three recovery experiments at the same scale.
pub fn recovery_comparison(
    cfg: SimConfig,
    steps_before_kill: usize,
    arena_bytes: usize,
) -> Vec<RecoveryReport> {
    vec![
        incore_recovery(cfg, steps_before_kill),
        pm_recovery(cfg, steps_before_kill, arena_bytes),
        etree_recovery(cfg, steps_before_kill),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig { steps: 12, max_level: 4, base_level: 2, ..SimConfig::default() }
    }

    #[test]
    fn pm_recovers_fast() {
        let r = pm_recovery(cfg(), 12, 64 << 20);
        assert!(r.same_node_secs > 0.0);
        assert!(r.new_node_secs.unwrap() > r.same_node_secs, "replica move costs extra");
        assert!(r.elements > 100);
    }

    /// Regression: both recovery scenarios must restore the tree under
    /// the exact config it crashed with, not `PmConfig::default()`.
    #[test]
    fn restore_preserves_precrash_config() {
        let (_, same_node_cfg, new_node_cfg) = pm_recovery_detailed(cfg(), 6, 64 << 20);
        assert_eq!(same_node_cfg, pm_experiment_config());
        assert_eq!(new_node_cfg, pm_experiment_config());
        // And the experiment config genuinely differs from the default,
        // so the assertions above cannot pass vacuously.
        assert_ne!(pm_experiment_config(), PmConfig::default());
    }

    #[test]
    fn incore_recovery_reads_snapshot() {
        let r = incore_recovery(cfg(), 12);
        assert!(r.same_node_secs > 0.0);
        assert_eq!(r.new_node_secs, Some(r.same_node_secs));
    }

    #[test]
    fn etree_reopen_near_instant() {
        let r = etree_recovery(cfg(), 6);
        assert!(r.same_node_secs >= 0.0);
        assert_eq!(r.new_node_secs, None, "etree is unrecoverable on a new node");
    }

    #[test]
    fn rt_recovery_resurrects_the_whole_rank() {
        let r = rt_recovery(SimConfig { steps: 4, ..cfg() }, 2, 48 << 20);
        assert_eq!(r.resumed_step, 2);
        assert!(r.elements > 100);
        assert!(r.same_node_restart_secs > 0.0);
        assert!(
            r.new_node_restart_secs > r.same_node_restart_secs,
            "replica transfer costs extra: {} vs {}",
            r.new_node_restart_secs,
            r.same_node_restart_secs
        );
        assert!(r.report_identical, "resumed runs must reproduce the uncrashed report");
    }

    #[test]
    fn paper_ordering_holds() {
        // §5.6: in-core (42.9s) >> PM-octree (2.1s) > etree (~0);
        // new node: PM 3.48s (2.1 + 1.38 transfer), etree impossible.
        let rs = recovery_comparison(cfg(), 12, 64 << 20);
        let incore = rs.iter().find(|r| r.scheme == "in-core").unwrap();
        let pm = rs.iter().find(|r| r.scheme == "pm-octree").unwrap();
        let et = rs.iter().find(|r| r.scheme == "out-of-core").unwrap();
        assert!(
            incore.same_node_secs > pm.same_node_secs,
            "in-core {} vs pm {}",
            incore.same_node_secs,
            pm.same_node_secs
        );
        assert!(pm.same_node_secs > et.same_node_secs);
        assert!(pm.new_node_secs.unwrap() > pm.same_node_secs);
        assert!(et.new_node_secs.is_none());
    }
}
