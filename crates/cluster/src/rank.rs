//! One simulated processor: a backend instance owning a Morton range of
//! the global domain.
//!
//! Domain decomposition follows the standard parallel-octree convention:
//! a rank materializes every octant whose region **overlaps** its curve
//! range; octants wholly inside foreign ranges stay coarse (a one-layer
//! coarse halo around the owned region). A leaf is *owned* iff its Morton
//! anchor falls in the range, so every leaf has exactly one owner and
//! per-rank element counts sum to the global count plus the (small)
//! coarse halos.

use pm_octree::{PmConfig, PmOctree};
use pmoctree_amr::{
    adapt, balance_subset, AdaptCriterion, Cell, EtreeBackend, InCoreBackend, OctreeBackend,
    PmBackend, Target,
};
use pmoctree_morton::{anchor, OctKey, ZRange};
use pmoctree_nvbm::{DeviceModel, NvbmArena};
use pmoctree_solver::Simulation;

/// Which octree implementation a cluster run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// PM-octree on NVBM (optionally without the dynamic transformation).
    Pm {
        /// Enable §3.3 dynamic layout transformation.
        transform: bool,
        /// DRAM budget for the C0 tree, in octants.
        c0_octants: usize,
        /// Keep remote replicas of `V_{i-1}`.
        replicas: bool,
    },
    /// Gerris-style in-core octree + snapshot files.
    InCore,
    /// Etree-style out-of-core octree on NVBM.
    Etree,
}

impl Scheme {
    /// Default PM-octree scheme used by the scaling studies.
    pub fn pm_default() -> Self {
        Scheme::Pm { transform: true, c0_octants: 1 << 14, replicas: false }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Pm { .. } => "pm-octree",
            Scheme::InCore => "in-core",
            Scheme::Etree => "out-of-core",
        }
    }

    /// Build one backend instance for a rank. `arena_bytes` sizes the
    /// per-rank NVBM device.
    pub fn make_backend(&self, arena_bytes: usize) -> Box<dyn OctreeBackend + Send> {
        match *self {
            Scheme::Pm { transform, c0_octants, replicas } => {
                let cfg = PmConfig {
                    dynamic_transform: transform,
                    c0_capacity_octants: c0_octants,
                    replicas,
                    ..PmConfig::default()
                };
                Box::new(PmBackend::new(PmOctree::create(
                    NvbmArena::new(arena_bytes, DeviceModel::default()),
                    cfg,
                )))
            }
            Scheme::InCore => Box::new(InCoreBackend::new()),
            Scheme::Etree => Box::new(EtreeBackend::on_nvbm()),
        }
    }
}

/// A criterion restricted to a rank's range: octants with no overlap are
/// always coarsening candidates, so trees shed regions they lose during
/// repartitioning.
pub struct RangedCriterion<'a> {
    /// The application criterion.
    pub inner: &'a dyn AdaptCriterion,
    /// The rank's owned curve range.
    pub range: ZRange<3>,
}

impl AdaptCriterion for RangedCriterion<'_> {
    fn target(&self, key: &OctKey, data: &Cell) -> Target {
        if !self.range.overlaps(&ZRange::of(key)) {
            return Target::Coarsen;
        }
        // Octants that merely touch the range refine only if the range
        // actually owns part of the refined region (avoid halo blow-up):
        // we allow the refinement when the inner criterion asks for it
        // and at least one child overlaps the owned range.
        self.inner.target(key, data)
    }

    fn max_level(&self) -> u8 {
        self.inner.max_level()
    }
}

/// One simulated processor.
///
/// A rank is the unit the worker pool schedules: `ClusterSim`'s parallel
/// phases hand each rank as a disjoint `&mut` to exactly one worker, so
/// everything it owns (backend, arena, virtual clock, tracer journal,
/// fail plan) is single-writer during a phase and only read by the
/// coordinator after the pool joins.
pub struct Rank {
    /// Rank id (0-based).
    pub id: usize,
    /// The octree backend.
    pub backend: Box<dyn OctreeBackend + Send>,
    /// Owned Morton range.
    pub range: ZRange<3>,
}

/// Ranks migrate between pool workers, so this must hold; asserting it
/// here turns a future non-`Send` field into a build error with a
/// readable location.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Rank>();
};

impl Rank {
    /// Create a rank over a range.
    pub fn new(id: usize, scheme: &Scheme, arena_bytes: usize, range: ZRange<3>) -> Self {
        Rank { id, backend: scheme.make_backend(arena_bytes), range }
    }

    /// Owned leaves (anchor inside the range) with their work weights.
    pub fn owned_leaves(&mut self) -> Vec<(OctKey, f64)> {
        let mut out = Vec::new();
        let range = self.range;
        self.backend.for_each_leaf(&mut |k, d| {
            if range.owns(&k) {
                out.push((k, if d[3] > 0.0 { d[3] } else { 1.0 }));
            }
        });
        out
    }

    /// Number of owned leaves.
    pub fn owned_leaf_count(&mut self) -> usize {
        let mut n = 0usize;
        let range = self.range;
        self.backend.for_each_leaf(&mut |k, _| {
            if range.owns(&k) {
                n += 1;
            }
        });
        n
    }

    /// Run the local meshing + solve phases of one step. Returns the
    /// virtual-time deltas `[refine, balance, solve, persist]`.
    pub fn local_step(&mut self, sim: &Simulation, step_idx: usize, t: f64) -> [u64; 4] {
        let crit = RangedCriterion {
            inner: &pmoctree_solver::InterfaceCriterion {
                interface: sim.interface,
                time: sim.time.clone(),
                band_cells: sim.cfg.band_cells,
                max_level: sim.cfg.max_level,
            },
            range: self.range,
        };
        let b = self.backend.as_mut();
        // Mirror the single-rank driver's span taxonomy so cluster traces
        // line up with `pmoctree_solver::Simulation::step`.
        let tr = b.tracer();
        let t0 = b.elapsed_ns();
        tr.begin("step", t0, Some(step_idx as u64));
        tr.begin("step::refine", t0, None);
        adapt(b, &crit);
        let t1 = b.elapsed_ns();
        tr.end("step::refine", t1);
        tr.begin("step::balance", t1, None);
        // Local balance: only the active band needs re-checking (the
        // balanced adapt primitives keep the rest 2:1 by construction).
        let mut active = Vec::new();
        b.for_each_leaf(&mut |k, d: &Cell| {
            if d[0].abs() < 8.0 * k.extent() {
                active.push(k);
            }
        });
        balance_subset(b, &active);
        let t2 = b.elapsed_ns();
        tr.end("step::balance", t2);
        tr.begin("step::solve", t2, None);
        pmoctree_solver::advect(b, &sim.interface, t);
        pmoctree_solver::relax_pressure(b, sim.cfg.relax_iters);
        pmoctree_solver::estimate_work(b);
        let t3 = b.elapsed_ns();
        tr.end("step::solve", t3);
        tr.begin("step::persist", t3, None);
        b.end_of_step(step_idx + 1);
        let t4 = b.elapsed_ns();
        tr.end("step::persist", t4);
        tr.end("step", t4);
        [t1 - t0, t2 - t1, t3 - t2, t4 - t3]
    }

    /// Construct the initial local mesh for the rank's range.
    pub fn construct(&mut self, sim: &Simulation) {
        // All ranks constructing in parallel store the same t0 into the
        // shared sim clock: concurrent, but value-identical, atomic stores.
        sim.time.set(sim.cfg.t0);
        pmoctree_amr::construct_uniform(self.backend.as_mut(), sim.cfg.base_level.min(2));
        let crit = RangedCriterion {
            inner: &pmoctree_solver::InterfaceCriterion {
                interface: sim.interface,
                time: sim.time.clone(),
                band_cells: sim.cfg.band_cells,
                max_level: sim.cfg.max_level,
            },
            range: self.range,
        };
        for _ in 0..sim.cfg.max_level.max(1) {
            adapt(self.backend.as_mut(), &crit);
        }
        pmoctree_solver::advect(self.backend.as_mut(), &sim.interface, sim.cfg.t0);
    }

    /// Is `key`'s leaf owned by this rank?
    pub fn owns(&self, key: &OctKey) -> bool {
        let a = anchor::<3>(key);
        a >= self.range.lo && a < self.range.hi
    }

    /// Resurrect a dead PM rank on a **new node** from its replica.
    ///
    /// The replica image carries the whole device — mesh versions *and*
    /// the `pm-rt` root bundle shipped with every persist delta — so the
    /// transferred bytes are enough to bring back the entire rank: the
    /// octree is restored at the root the committed
    /// [`RunState`](pmoctree_solver::RunState) pairs with, and the run
    /// state itself (config, step index, timing history) comes out of
    /// the runtime's named-root registry. Returns the rank, the restored
    /// runtime + state, and the bytes that crossed the network (the
    /// caller charges its interconnect model with them).
    pub fn resurrect_from_replica(
        id: usize,
        range: ZRange<3>,
        arena_bytes: usize,
        replica: &pm_octree::ReplicaSet,
        pm_cfg: PmConfig,
    ) -> Result<(Self, pm_rt::PmRt, pmoctree_solver::RunState, u64), pm_octree::PmError> {
        let mut fresh = NvbmArena::new(arena_bytes, DeviceModel::default());
        fresh.restore_media(replica.image());
        match pmoctree_solver::reattach(fresh, pm_cfg)? {
            pmoctree_solver::Reattach::Resumable(backend, rt, state) => {
                let rank = Rank { id, backend, range };
                Ok((rank, rt, state, replica.live_bytes()))
            }
            pmoctree_solver::Reattach::Nothing(_) => {
                Err(pm_octree::PmError::Recovery("replica carries no committed run state".into()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmoctree_solver::SimConfig;

    fn sim() -> Simulation {
        Simulation::new(SimConfig { steps: 2, max_level: 4, base_level: 2, ..SimConfig::default() })
    }

    #[test]
    fn two_ranks_cover_all_leaves_once() {
        let s = sim();
        let mid = pmoctree_morton::anchor_end::<3>(&OctKey::root().child(3));
        let r0 = ZRange { lo: 0, hi: mid };
        let r1 = ZRange { lo: mid, hi: u64::MAX };
        let mut a = Rank::new(0, &Scheme::InCore, 0, r0);
        let mut b = Rank::new(1, &Scheme::InCore, 0, r1);
        a.construct(&s);
        b.construct(&s);
        // A global single-rank reference.
        let mut g = Rank::new(0, &Scheme::InCore, 0, ZRange::all());
        g.construct(&s);
        let global = g.owned_leaf_count();
        let na = a.owned_leaf_count();
        let nb = b.owned_leaf_count();
        assert_eq!(na + nb, global, "owned leaves partition the mesh: {na}+{nb} vs {global}");
        // Each rank's total tree is bigger than what it owns (halo),
        // but much smaller than the global tree when the split matters.
        assert!(a.backend.leaf_count() >= na);
        assert!(b.backend.leaf_count() >= nb);
    }

    #[test]
    fn ranged_criterion_sheds_foreign_regions() {
        let s = sim();
        let mid = pmoctree_morton::anchor_end::<3>(&OctKey::root().child(3));
        let mut r = Rank::new(0, &Scheme::InCore, 0, ZRange { lo: 0, hi: mid });
        r.construct(&s);
        let before = r.backend.leaf_count();
        // Shrink the range: next adaptation coarsens the lost half.
        r.range = ZRange { lo: 0, hi: pmoctree_morton::anchor_end::<3>(&OctKey::root().child(1)) };
        s.time.set(s.cfg.t0);
        let _ = r.local_step(&s, 0, s.cfg.t0);
        assert!(r.backend.leaf_count() < before, "lost region must coarsen away");
    }

    #[test]
    fn pm_rank_persists_per_step() {
        let s = sim();
        let mut r = Rank::new(0, &Scheme::pm_default(), 64 << 20, ZRange::all());
        r.construct(&s);
        let dt = r.local_step(&s, 0, s.cfg.t0 + s.cfg.dt);
        assert!(dt[3] > 0, "persist phase must cost time");
        assert!(dt.iter().sum::<u64>() > 0);
    }

    #[test]
    fn schemes_have_names() {
        assert_eq!(Scheme::pm_default().name(), "pm-octree");
        assert_eq!(Scheme::InCore.name(), "in-core");
        assert_eq!(Scheme::Etree.name(), "out-of-core");
    }
}
