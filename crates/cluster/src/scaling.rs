//! The parallel simulation: P ranks in bulk-synchronous steps with an
//! α–β network model, producing the weak/strong scaling numbers of
//! Figures 6–10.
//!
//! Each rank executes the *real* meshing and solver code on its
//! subdomain; only the interconnect is modeled. Phases are separated by
//! per-step barriers (clocks jump to the global max), and the Partition
//! phase charges allgather + octant-migration traffic.
//!
//! The `par_iter_mut` phases execute on a real worker pool (the `rayon`
//! shim): ranks are disjoint `&mut` items claimed chunk-by-chunk, so each
//! rank — its backend, virtual clock, tracer journal, stats and fail
//! plan — is touched by exactly one worker per phase. Every cross-rank
//! reduction (the barrier max, phase-delta maxes, leaf-table gathers,
//! journal/metric merges) happens on the coordinator after the pool's
//! scope join, iterating ranks in rank order. Reports, BENCH JSON and
//! traces are therefore byte-identical for any worker count; threads only
//! change which core runs which rank.

use pmoctree_morton::{partition_by_weight, OctKey, ZRange};
use pmoctree_nvbm::{Event, Metrics, NetworkModel, Tracer};
use pmoctree_solver::{SimConfig, Simulation};
use rayon::prelude::*;

use crate::rank::{Rank, Scheme};

/// Per-step cluster timing (virtual seconds, max across ranks per phase).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ClusterStep {
    /// Refine & Coarsen.
    pub refine_s: f64,
    /// 2:1 Balance.
    pub balance_s: f64,
    /// Partition (gather + replan + migration traffic).
    pub partition_s: f64,
    /// Solve sweeps.
    pub solve_s: f64,
    /// Persistence (persist / snapshot / flush).
    pub persist_s: f64,
    /// Global owned elements at the end of the step.
    pub elements: usize,
    /// Octants that changed owner this step.
    pub migrated: usize,
}

impl ClusterStep {
    /// Total step time.
    pub fn total_s(&self) -> f64 {
        self.refine_s + self.balance_s + self.partition_s + self.solve_s + self.persist_s
    }
}

/// Result of a cluster run.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ClusterReport {
    /// Scheme name.
    pub scheme: &'static str,
    /// Number of ranks.
    pub procs: usize,
    /// Per-step timings.
    pub steps: Vec<ClusterStep>,
    /// Peak global element count.
    pub peak_elements: usize,
}

impl ClusterReport {
    /// Total execution time (virtual seconds).
    pub fn exec_secs(&self) -> f64 {
        self.steps.iter().map(|s| s.total_s()).sum()
    }

    /// Phase sums `[refine, balance, partition, solve, persist]`.
    pub fn phase_secs(&self) -> [f64; 5] {
        let mut out = [0.0; 5];
        for s in &self.steps {
            out[0] += s.refine_s;
            out[1] += s.balance_s;
            out[2] += s.partition_s;
            out[3] += s.solve_s;
            out[4] += s.persist_s;
        }
        out
    }

    /// Phase percentage breakdown.
    pub fn phase_percent(&self) -> [f64; 5] {
        let total = self.exec_secs().max(1e-30);
        self.phase_secs().map(|x| 100.0 * x / total)
    }
}

/// A bulk-synchronous multi-rank simulation.
pub struct ClusterSim {
    /// The ranks.
    pub ranks: Vec<Rank>,
    /// Interconnect model.
    pub net: NetworkModel,
    /// The driving workload.
    pub sim: Simulation,
    scheme: Scheme,
}

impl ClusterSim {
    /// Build a cluster: uniform initial curve split, construct each
    /// rank's subdomain, then one load-balancing partition.
    pub fn new(scheme: Scheme, procs: usize, cfg: SimConfig, arena_bytes: usize) -> Self {
        assert!(procs >= 1);
        let sim = Simulation::new(cfg);
        let end = pmoctree_morton::anchor_end::<3>(&OctKey::root());
        let span = end / procs as u64;
        let ranks: Vec<Rank> = (0..procs)
            .map(|i| {
                let lo = i as u64 * span;
                let hi = if i + 1 == procs { u64::MAX } else { (i as u64 + 1) * span };
                Rank::new(i, &scheme, arena_bytes, ZRange { lo, hi })
            })
            .collect();
        let mut c = ClusterSim { ranks, net: NetworkModel::gemini(), sim, scheme };
        c.sim.time.set(c.sim.cfg.t0);
        c.ranks.par_iter_mut().for_each(|r| {
            let s = &c.sim;
            r.construct(s);
        });
        let t0 = c.sim.cfg.t0;
        // Two rounds of (re-balance load, settle the mesh) give a stable,
        // balanced initial decomposition.
        for _ in 0..2 {
            c.repartition();
            c.settle(t0);
        }
        c.barrier();
        c
    }

    /// Drive the decomposed mesh to a joint fixed point of the adaptation
    /// criterion and the global 2:1 constraint.
    fn settle(&mut self, t: f64) {
        for _ in 0..=self.sim.cfg.max_level {
            self.materialize_ranges(t);
            if self.global_balance() == 0 {
                break;
            }
        }
    }

    /// After new ranges are installed, each rank adapts until it has
    /// materialized its newly-owned regions (this stands in for the
    /// physical octant migration; the traffic was already charged by
    /// `repartition`, the local refinement reconstructs the mesh
    /// deterministically from the shared criterion).
    fn materialize_ranges(&mut self, t: f64) {
        self.sim.time.set(t);
        let sim = &self.sim;
        self.ranks.par_iter_mut().for_each(|r| {
            let crit = crate::rank::RangedCriterion {
                inner: &pmoctree_solver::InterfaceCriterion {
                    interface: sim.interface,
                    time: sim.time.clone(),
                    band_cells: sim.cfg.band_cells,
                    max_level: sim.cfg.max_level,
                },
                range: r.range,
            };
            for _ in 0..=sim.cfg.max_level {
                let before = r.backend.leaf_count();
                pmoctree_amr::adapt(r.backend.as_mut(), &crit);
                if r.backend.leaf_count() == before {
                    break;
                }
            }
            pmoctree_solver::advect(r.backend.as_mut(), &sim.interface, t);
        });
    }

    /// Parallel 2:1 balance (§2's `Balance` "enforced on the entire
    /// parallel octree"): gather the global owned-leaf set, detect
    /// cross-rank violations against it, and send refine requests to the
    /// owners; iterate to a fixed point. Returns the number of
    /// refinements requested.
    fn global_balance(&mut self) -> usize {
        let procs = self.ranks.len();
        if procs == 1 {
            return 0;
        }
        let mut refinements = 0usize;
        loop {
            // Global sorted leaf table (anchor-ordered): the linear-octree
            // trick makes "containing leaf" a binary search.
            let per_rank: Vec<Vec<OctKey>> = self
                .ranks
                .par_iter_mut()
                .map(|r| r.owned_leaves().into_iter().map(|(k, _)| k).collect())
                .collect();
            let mut table: Vec<OctKey> = per_rank.iter().flatten().copied().collect();
            table.sort();
            let containing = |k: &OctKey| -> OctKey {
                let a = pmoctree_morton::anchor::<3>(k);
                let i = table.partition_point(|l| pmoctree_morton::anchor::<3>(l) <= a);
                table[i.saturating_sub(1)]
            };
            // Detect violations; route refine requests to owners.
            let mut requests: Vec<Vec<OctKey>> = vec![Vec::new(); procs];
            let mut any = false;
            for leaves in &per_rank {
                for k in leaves {
                    for axis in 0..3 {
                        for dir in [-1i8, 1] {
                            if let Some(nk) = k.face_neighbor(axis, dir) {
                                let leaf = containing(&nk);
                                if leaf.level() + 1 < k.level() {
                                    let owner = self
                                        .ranks
                                        .iter()
                                        .position(|r| r.owns(&leaf))
                                        .expect("every leaf has an owner");
                                    if !requests[owner].contains(&leaf) {
                                        requests[owner].push(leaf);
                                        any = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Charge one neighbor-exchange round to every rank. Balance
            // needs only boundary leaves from curve-adjacent peers, not
            // the full table — a halo exchange, so the per-rank volume
            // shrinks with P (unlike the Partition allgather).
            let halo_bytes = (table.len() as u64 * 16) / procs as u64 + 256;
            let exch_ns = self.net.alpha_ns * 2 + self.net.transfer_ns(halo_bytes);
            for r in self.ranks.iter_mut() {
                r.backend.charge_external(exch_ns);
            }
            if !any {
                return refinements;
            }
            refinements += requests.iter().map(Vec::len).sum::<usize>();
            self.ranks.par_iter_mut().zip(requests).for_each(|(r, reqs)| {
                for k in reqs {
                    pmoctree_amr::refine_balanced(r.backend.as_mut(), k);
                }
            });
        }
    }

    /// The scheme in use.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Attach an enabled tracer to every rank (tid = rank id). Each rank
    /// journals independently, so the parallel phases stay contention-free
    /// and per-rank event streams stay deterministic.
    pub fn enable_tracing(&mut self) {
        for r in &mut self.ranks {
            r.backend.set_tracer(Tracer::enabled(r.id as u32));
        }
    }

    /// Per-rank event journals as `(tid, events)` threads, ready for
    /// [`pmoctree_nvbm::obsv::chrome::trace_json`]. Empty unless
    /// [`ClusterSim::enable_tracing`] was called.
    ///
    /// This is the barrier-side journal merge: rank workers record
    /// concurrently into their own buffers during parallel phases, and
    /// the coordinator folds them here through
    /// [`pmoctree_nvbm::obsv::merge_threads`] (stable tid order), so the
    /// exported trace does not depend on the worker count.
    pub fn trace_threads(&self) -> Vec<(u32, Vec<Event>)> {
        pmoctree_nvbm::obsv::merge_threads(
            self.ranks
                .iter()
                .map(|r| {
                    let tr = r.backend.tracer();
                    (tr.tid(), tr.events())
                })
                .filter(|(_, ev)| !ev.is_empty())
                .collect(),
        )
    }

    /// Metrics registries of all ranks merged into one (counters add,
    /// gauges take the max, histograms merge cell-wise).
    pub fn merged_metrics(&self) -> Metrics {
        let mut out = Metrics::default();
        for r in &self.ranks {
            out.merge(&r.backend.tracer().metrics());
        }
        out
    }

    /// Bulk-synchronous barrier: every rank's clock jumps to the global
    /// max. Runs on the coordinator after the pool's scope join, so it
    /// reads quiescent clocks and stays a max-over-ranks reduction no
    /// matter how many workers executed the preceding phase.
    fn barrier(&mut self) {
        let max = self.ranks.iter().map(|r| r.backend.elapsed_ns()).max().unwrap_or(0);
        for r in &mut self.ranks {
            r.backend.barrier_to(max);
        }
    }

    /// Gather all owned leaves, replan ranges, charge communication, and
    /// install the new ranges. Returns (migrated octants, partition ns
    /// charged per rank max).
    fn repartition(&mut self) -> (usize, u64) {
        let procs = self.ranks.len();
        // Gather phase: every rank contributes its owned leaves.
        let per_rank: Vec<Vec<(OctKey, f64)>> =
            self.ranks.par_iter_mut().map(|r| r.owned_leaves()).collect();
        let mut all: Vec<(OctKey, f64)> = per_rank.iter().flatten().copied().collect();
        all.sort_by_key(|a| a.0);
        if all.is_empty() {
            return (0, 0);
        }
        let new_ranges = partition_by_weight(&all, procs);
        // Migration volume: leaves whose owner changes.
        let mut migrated = 0usize;
        let mut moved_bytes_per_rank = vec![0u64; procs];
        for (old_rank, leaves) in per_rank.iter().enumerate() {
            for (k, _) in leaves {
                let new_owner =
                    new_ranges.iter().position(|r| r.owns(k)).expect("ranges cover curve");
                if new_owner != old_rank {
                    migrated += 1;
                    moved_bytes_per_rank[old_rank] += 128;
                    moved_bytes_per_rank[new_owner] += 128;
                }
            }
        }
        // Communication charges: allgather of the weight table
        // (tree-structured, log P rounds, full table received), plus the
        // per-rank migration traffic.
        let table_bytes = all.len() as u64 * 16;
        let log_p = (usize::BITS - procs.leading_zeros()) as u64;
        let mut max_charge = 0u64;
        for (i, r) in self.ranks.iter_mut().enumerate() {
            let gather_ns = self.net.alpha_ns * log_p + self.net.transfer_ns(table_bytes);
            let migrate_ns = if moved_bytes_per_rank[i] > 0 {
                self.net.transfer_ns(moved_bytes_per_rank[i])
            } else {
                0
            };
            let ns = gather_ns + migrate_ns;
            r.backend.charge_external(ns);
            max_charge = max_charge.max(ns);
            r.range = new_ranges[i];
        }
        (migrated, max_charge)
    }

    /// Execute one bulk-synchronous time step.
    pub fn step(&mut self, step_idx: usize) -> ClusterStep {
        let t = self.sim.cfg.t0 + self.sim.cfg.dt * (step_idx as f64 + 1.0);
        self.sim.time.set(t);
        // Local phases (parallel across ranks).
        let deltas: Vec<[u64; 4]> = self
            .ranks
            .par_iter_mut()
            .map(|r| {
                let s = &self.sim;
                r.local_step(s, step_idx, t)
            })
            .collect();
        let max_elapsed =
            |c: &Self| c.ranks.iter().map(|r| r.backend.elapsed_ns()).max().unwrap_or(0);
        // Cross-rank balance exchange (part of the Balance routine).
        let t_bal0 = max_elapsed(self);
        self.global_balance();
        let bal_extra = max_elapsed(self) - t_bal0;
        // Partition phase (global): replan, charge traffic, materialize.
        let t_part0 = max_elapsed(self);
        let (migrated, _) = self.repartition();
        if migrated > 0 {
            self.settle(t);
        }
        let partition_ns = max_elapsed(self) - t_part0;
        self.barrier();
        let elements: usize = self.ranks.iter_mut().map(|r| r.owned_leaf_count()).sum();
        let maxof = |i: usize| deltas.iter().map(|d| d[i]).max().unwrap_or(0) as f64 * 1e-9;
        ClusterStep {
            refine_s: maxof(0),
            balance_s: maxof(1) + bal_extra as f64 * 1e-9,
            solve_s: maxof(2),
            persist_s: maxof(3),
            partition_s: partition_ns as f64 * 1e-9,
            elements,
            migrated,
        }
    }

    /// Run `steps` time steps and report.
    pub fn run(&mut self, steps: usize) -> ClusterReport {
        let mut report = ClusterReport {
            scheme: self.scheme.name(),
            procs: self.ranks.len(),
            ..ClusterReport::default()
        };
        for i in 0..steps {
            let s = self.step(i);
            report.peak_elements = report.peak_elements.max(s.elements);
            report.steps.push(s);
        }
        report
    }

    /// Current global element count (owned leaves across ranks).
    pub fn elements(&mut self) -> usize {
        self.ranks.iter_mut().map(|r| r.owned_leaf_count()).sum()
    }
}

/// Pick the refinement depth that yields roughly `target` global
/// elements for the droplet workload (interface area ≈ 0.35 of the unit
/// domain crossed by band cells: elements ≈ base + c·4^L).
pub fn max_level_for(target: usize) -> u8 {
    let mut level = 3u8;
    while level < 10 {
        let est = 520.0 + 2.2 * 4f64.powi(level as i32);
        if est >= target as f64 {
            break;
        }
        level += 1;
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_level: u8) -> SimConfig {
        SimConfig { steps: 3, max_level, base_level: 2, ..SimConfig::default() }
    }

    #[test]
    fn single_rank_runs() {
        let mut c = ClusterSim::new(Scheme::InCore, 1, cfg(3), 0);
        let r = c.run(3);
        assert_eq!(r.procs, 1);
        assert_eq!(r.steps.len(), 3);
        assert!(r.exec_secs() > 0.0);
        assert!(r.peak_elements > 64);
    }

    #[test]
    fn multi_rank_partitions_elements() {
        let mut c = ClusterSim::new(Scheme::InCore, 4, cfg(4), 0);
        let single = ClusterSim::new(Scheme::InCore, 1, cfg(4), 0).elements();
        let multi = c.elements();
        // Owned leaves partition the global mesh. The paper itself saw up
        // to 7% variation in per-run element counts; decomposition changes
        // which 2:1 ripples fire, so we allow the same tolerance.
        let rel = (multi as f64 - single as f64).abs() / single as f64;
        assert!(rel < 0.07, "partitioned element total: {multi} vs {single}");
        let r = c.run(2);
        assert!(r.steps.iter().all(|s| s.partition_s > 0.0), "partition must cost time");
    }

    #[test]
    fn partition_balances_load() {
        let mut c = ClusterSim::new(Scheme::InCore, 4, cfg(4), 0);
        let counts: Vec<usize> = c.ranks.iter_mut().map(|r| r.owned_leaf_count()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 3.0, "load imbalance after initial partition: {counts:?}");
    }

    #[test]
    fn strong_scaling_reduces_time() {
        let r1 = ClusterSim::new(Scheme::InCore, 1, cfg(4), 0).run(2);
        let r4 = ClusterSim::new(Scheme::InCore, 4, cfg(4), 0).run(2);
        assert!(
            r4.exec_secs() < r1.exec_secs(),
            "4 ranks should beat 1: {} vs {}",
            r4.exec_secs(),
            r1.exec_secs()
        );
    }

    #[test]
    fn pm_scheme_runs_in_cluster() {
        let mut c = ClusterSim::new(Scheme::pm_default(), 2, cfg(3), 32 << 20);
        let r = c.run(2);
        assert!(r.exec_secs() > 0.0);
        assert_eq!(r.scheme, "pm-octree");
    }

    #[test]
    fn max_level_estimator_monotone() {
        assert!(max_level_for(1_000) <= max_level_for(10_000));
        assert!(max_level_for(10_000) <= max_level_for(200_000));
        assert!(max_level_for(500) >= 3);
    }
}
