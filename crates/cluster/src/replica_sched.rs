//! Automated remote-replica scheduling — the paper's stated future work
//! (§3.4: replicas are "stored on other compute nodes or staging nodes
//! selected by job schedulers according to their NVBM utilization";
//! §6: "we wish to leave the automated approach for remote replica
//! scheduling as the future work").
//!
//! The scheduler places each rank's `V_{i-1}` replica on the peer with
//! the lowest projected NVBM utilization, subject to anti-affinity (a
//! replica is useless on the node it protects) and capacity.

/// NVBM occupancy of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeNvbm {
    /// Node id.
    pub id: usize,
    /// Device capacity in bytes.
    pub capacity: u64,
    /// Bytes already in use (own octree + previously placed replicas).
    pub used: u64,
}

impl NodeNvbm {
    /// Current utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.used as f64 / self.capacity.max(1) as f64
    }

    /// Free bytes.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }
}

/// A placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Rank whose replica is being placed.
    pub source: usize,
    /// Node that will host the replica.
    pub target: usize,
    /// Replica size in bytes.
    pub bytes: u64,
}

/// Why a placement failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// No node other than the source has enough free NVBM.
    NoCapacity {
        /// The rank that could not be protected.
        source: usize,
    },
}

/// Utilization-aware replica scheduler.
///
/// Placement is coordinator-only state: decisions are made between
/// worker-pool phases (never from inside a `par_iter` over ranks), so
/// the greedy argmin below stays deterministic regardless of worker
/// count. `Send` is asserted so a future driver may hand the scheduler
/// itself to a pool worker.
#[derive(Debug, Clone, Default)]
pub struct ReplicaScheduler {
    nodes: Vec<NodeNvbm>,
}

const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ReplicaScheduler>();
    assert_send::<Placement>();
};

impl ReplicaScheduler {
    /// Scheduler over the given nodes.
    pub fn new(nodes: Vec<NodeNvbm>) -> Self {
        ReplicaScheduler { nodes }
    }

    /// Current view of the nodes (including accepted placements).
    pub fn nodes(&self) -> &[NodeNvbm] {
        &self.nodes
    }

    /// Pick the host for one replica: the lowest-utilization node that is
    /// not the source and has room. Accepted placements update the book.
    pub fn place(&mut self, source: usize, bytes: u64) -> Result<Placement, PlacementError> {
        let target = self
            .nodes
            .iter()
            .filter(|n| n.id != source && n.free() >= bytes)
            .min_by(|a, b| a.utilization().total_cmp(&b.utilization()))
            .map(|n| n.id)
            .ok_or(PlacementError::NoCapacity { source })?;
        let slot = self.nodes.iter_mut().find(|n| n.id == target).expect("target exists");
        slot.used += bytes;
        Ok(Placement { source, target, bytes })
    }

    /// Place replicas for every rank (called once per persist cadence).
    /// Sources are processed largest-first so big replicas get first pick
    /// of the empty nodes (classic LPT load balancing).
    pub fn place_all(
        &mut self,
        sources: &[(usize, u64)],
    ) -> Result<Vec<Placement>, PlacementError> {
        let mut order: Vec<(usize, u64)> = sources.to_vec();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        order.into_iter().map(|(src, bytes)| self.place(src, bytes)).collect()
    }

    /// Spread of utilization after placement (max − min); the balance
    /// quality metric.
    pub fn utilization_spread(&self) -> f64 {
        let us: Vec<f64> = self.nodes.iter().map(NodeNvbm::utilization).collect();
        let max = us.iter().copied().fold(0.0, f64::max);
        let min = us.iter().copied().fold(1.0, f64::min);
        (max - min).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: usize, cap: u64) -> Vec<NodeNvbm> {
        (0..n).map(|id| NodeNvbm { id, capacity: cap, used: 0 }).collect()
    }

    #[test]
    fn picks_lowest_utilization() {
        let mut ns = nodes(3, 1000);
        ns[1].used = 100;
        ns[2].used = 500;
        let mut s = ReplicaScheduler::new(ns);
        // Source 0 → node 1 (node 0 excluded, node 1 less loaded than 2).
        let p = s.place(0, 100).unwrap();
        assert_eq!(p.target, 1);
    }

    #[test]
    fn never_places_on_source() {
        let mut ns = nodes(2, 1000);
        ns[1].used = 999; // node 1 nearly full; node 0 empty
        let mut s = ReplicaScheduler::new(ns);
        // Source 0 cannot use itself even though it is the emptiest.
        assert_eq!(s.place(0, 1).unwrap().target, 1);
        assert!(matches!(s.place(0, 100), Err(PlacementError::NoCapacity { source: 0 })));
    }

    #[test]
    fn placements_update_book() {
        let mut s = ReplicaScheduler::new(nodes(3, 1000));
        let a = s.place(0, 400).unwrap();
        let b = s.place(0, 400).unwrap();
        assert_ne!(a.target, b.target, "second replica avoids the loaded node");
    }

    #[test]
    fn place_all_balances() {
        let mut s = ReplicaScheduler::new(nodes(4, 1000));
        let sources: Vec<(usize, u64)> = (0..4).map(|i| (i, 300)).collect();
        let ps = s.place_all(&sources).unwrap();
        assert_eq!(ps.len(), 4);
        // Every node ends with exactly one replica.
        for n in s.nodes() {
            assert_eq!(n.used, 300, "node {} has {}", n.id, n.used);
        }
        assert!(s.utilization_spread() < 1e-12);
    }

    #[test]
    fn large_replicas_first() {
        let mut s = ReplicaScheduler::new(nodes(3, 1000));
        // One big (800) and two small (300): the big one must not be
        // stranded by small ones filling every node past 200 free.
        let ps = s.place_all(&[(0, 300), (1, 800), (2, 300)]).unwrap();
        assert_eq!(ps[0].bytes, 800, "largest placed first");
        assert!(s.nodes().iter().all(|n| n.used <= n.capacity));
    }

    #[test]
    fn no_capacity_is_reported() {
        let mut s = ReplicaScheduler::new(nodes(2, 100));
        // The two cross placements fit; a third replica has nowhere to go.
        assert!(s.place_all(&[(0, 90), (1, 90)]).is_ok());
        assert!(matches!(s.place(0, 90), Err(PlacementError::NoCapacity { source: 0 })));
    }
}
