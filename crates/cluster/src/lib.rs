//! Multi-rank scaling simulation.
//!
//! The paper evaluates PM-octree on up to 1000 Titan processors; this
//! crate reproduces the *shape* of those experiments on one machine:
//! every rank runs the real meshing/solver code on its Morton-range
//! subdomain (in parallel threads), while the Gemini-class interconnect
//! is modeled with α–β costs charged to per-rank virtual clocks (see
//! DESIGN.md substitution table).
//!
//! * [`rank`] — one simulated processor (backend + owned curve range).
//! * [`scaling`] — bulk-synchronous stepping, repartitioning, and the
//!   weak/strong scaling reports behind Figures 6–10.
//! * [`failure`] — the §5.6 kill-and-restart experiments.
#![warn(missing_docs)]

pub mod failure;
pub mod rank;
pub mod replica_sched;
pub mod scaling;

pub use failure::{
    etree_recovery, incore_recovery, pm_recovery, recovery_comparison, rt_recovery, RecoveryReport,
    RtRecoveryReport,
};
pub use rank::{RangedCriterion, Rank, Scheme};
pub use replica_sched::{NodeNvbm, Placement, PlacementError, ReplicaScheduler};
pub use scaling::{max_level_for, ClusterReport, ClusterSim, ClusterStep};
