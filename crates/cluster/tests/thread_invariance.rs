//! Acceptance tests for the worker-pool determinism invariant: a cluster
//! run must produce *identical* results for any worker count — threads
//! may only change wall-clock time, never virtual time, phase breakdowns,
//! element counts or traces.
//!
//! The worker count is a process-wide setting, so every test here pins it
//! under a shared lock and restores the previous value on exit.

use pmoctree_cluster::{ClusterReport, ClusterSim, Scheme};
use pmoctree_nvbm::Event;
use pmoctree_solver::SimConfig;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

static WORKER_LOCK: Mutex<()> = Mutex::new(());

/// Pin the global worker count for the duration of a test.
struct Workers {
    prev: usize,
    _guard: MutexGuard<'static, ()>,
}

impl Workers {
    fn pin(n: usize) -> Workers {
        let guard = WORKER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = rayon::current_num_threads();
        rayon::set_num_threads(n);
        Workers { prev, _guard: guard }
    }

    fn set(&self, n: usize) {
        rayon::set_num_threads(n);
    }
}

impl Drop for Workers {
    fn drop(&mut self) {
        rayon::set_num_threads(self.prev);
    }
}

fn cfg(max_level: u8) -> SimConfig {
    SimConfig { steps: 3, max_level, base_level: 2, ..SimConfig::default() }
}

fn run_once(
    scheme: Scheme,
    arena_bytes: usize,
    traced: bool,
) -> (ClusterReport, Vec<(u32, Vec<Event>)>) {
    let mut c = ClusterSim::new(scheme, 4, cfg(4), arena_bytes);
    if traced {
        c.enable_tracing();
    }
    let report = c.run(2);
    (report, c.trace_threads())
}

#[test]
fn cluster_report_identical_for_any_worker_count() {
    let w = Workers::pin(1);
    let (baseline, _) = run_once(Scheme::InCore, 0, false);
    for workers in [2, 4] {
        w.set(workers);
        let (report, _) = run_once(Scheme::InCore, 0, false);
        assert_eq!(report, baseline, "ClusterReport must be bit-identical under {workers} workers");
    }
}

#[test]
fn pm_scheme_report_and_trace_identical_for_any_worker_count() {
    let w = Workers::pin(1);
    let (baseline, base_trace) = run_once(Scheme::pm_default(), 32 << 20, true);
    assert!(
        base_trace.iter().map(|(_, ev)| ev.len()).sum::<usize>() > 0,
        "traced run must record events"
    );
    for workers in [2, 4] {
        w.set(workers);
        let (report, trace) = run_once(Scheme::pm_default(), 32 << 20, true);
        assert_eq!(report, baseline, "pm report must not vary with {workers} workers");
        assert_eq!(trace, base_trace, "trace events must not vary with {workers} workers");
    }
}

/// The perf half of the invariant: with ≥ 4 cores, 4 workers must finish
/// the same smoke run at least 2× faster than 1 worker. On smaller
/// machines (e.g. 1-core CI containers) the comparison is meaningless —
/// the pool cannot run faster than the hardware — so the assertion is
/// gated on available parallelism and the test degrades to a determinism
/// re-check.
#[test]
fn four_workers_at_least_twice_as_fast_on_big_machines() {
    let w = Workers::pin(1);
    let run = || {
        let t0 = Instant::now();
        let mut c = ClusterSim::new(Scheme::InCore, 8, cfg(5), 0);
        let r = c.run(1);
        (t0.elapsed().as_secs_f64(), r)
    };
    let (secs_1, report_1) = run();
    w.set(4);
    let (secs_4, report_4) = run();
    assert_eq!(report_4, report_1, "speedup must not change results");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "cluster smoke wall-clock: 1 worker {secs_1:.3}s, 4 workers {secs_4:.3}s \
         (speedup {:.2}x on {cores} cores)",
        secs_1 / secs_4.max(1e-9)
    );
    if cores >= 4 {
        assert!(
            secs_4 * 2.0 <= secs_1,
            "4 workers should be ≥2x faster than 1 on {cores} cores: {secs_4:.3}s vs {secs_1:.3}s"
        );
    }
}
