//! Acceptance tests for the worker-pool determinism invariant: a cluster
//! run must produce *identical* results for any worker count — threads
//! may only change wall-clock time, never virtual time, phase breakdowns,
//! element counts or traces.
//!
//! The worker count is a process-wide setting, so every test here pins it
//! under a shared lock and restores the previous value on exit.

use pmoctree_cluster::{ClusterReport, ClusterSim, Scheme};
use pmoctree_nvbm::Event;
use pmoctree_solver::SimConfig;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

static WORKER_LOCK: Mutex<()> = Mutex::new(());

/// Pin the global worker count for the duration of a test.
struct Workers {
    prev: usize,
    _guard: MutexGuard<'static, ()>,
}

impl Workers {
    fn pin(n: usize) -> Workers {
        let guard = WORKER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = rayon::current_num_threads();
        rayon::set_num_threads(n);
        Workers { prev, _guard: guard }
    }

    fn set(&self, n: usize) {
        rayon::set_num_threads(n);
    }
}

impl Drop for Workers {
    fn drop(&mut self) {
        rayon::set_num_threads(self.prev);
    }
}

fn cfg(max_level: u8) -> SimConfig {
    SimConfig { steps: 3, max_level, base_level: 2, ..SimConfig::default() }
}

fn run_once(
    scheme: Scheme,
    arena_bytes: usize,
    traced: bool,
) -> (ClusterReport, Vec<(u32, Vec<Event>)>) {
    let mut c = ClusterSim::new(scheme, 4, cfg(4), arena_bytes);
    if traced {
        c.enable_tracing();
    }
    let report = c.run(2);
    (report, c.trace_threads())
}

#[test]
fn cluster_report_identical_for_any_worker_count() {
    let w = Workers::pin(1);
    let (baseline, _) = run_once(Scheme::InCore, 0, false);
    for workers in [2, 4] {
        w.set(workers);
        let (report, _) = run_once(Scheme::InCore, 0, false);
        assert_eq!(report, baseline, "ClusterReport must be bit-identical under {workers} workers");
    }
}

#[test]
fn pm_scheme_report_and_trace_identical_for_any_worker_count() {
    let w = Workers::pin(1);
    let (baseline, base_trace) = run_once(Scheme::pm_default(), 32 << 20, true);
    assert!(
        base_trace.iter().map(|(_, ev)| ev.len()).sum::<usize>() > 0,
        "traced run must record events"
    );
    for workers in [2, 4] {
        w.set(workers);
        let (report, trace) = run_once(Scheme::pm_default(), 32 << 20, true);
        assert_eq!(report, baseline, "pm report must not vary with {workers} workers");
        assert_eq!(trace, base_trace, "trace events must not vary with {workers} workers");
    }
}

/// The concurrent-write-domain half of the invariant, exercised directly
/// on one `PmOctree` rather than through the cluster driver: a batch
/// mixing refines and coarsens across *adjacent* write domains and
/// within a *single* domain must leave byte-identical media, leaves and
/// memory statistics whether 1, 2 or 4 workers execute the domains.
#[test]
fn pm_batch_interleaving_matrix_identical_for_any_worker_count() {
    use pm_octree::{CellData, DomainOp, PmConfig, PmOctree};
    use pmoctree_morton::OctKey;
    use pmoctree_nvbm::{DeviceModel, NvbmArena};

    fn run() -> (Vec<u8>, Vec<(OctKey, CellData)>, String) {
        let arena = NvbmArena::new(16 << 20, DeviceModel::default());
        let mut t = PmOctree::create(arena, PmConfig::default());
        t.refine(OctKey::root()).unwrap();
        let children: Vec<OctKey> = (0..8).map(|i| OctKey::root().child(i)).collect();
        assert!(t.refine_many(&children).iter().all(|&b| b));
        // Adjacent domains in one batch: refine deep in domain 0 while
        // domain 1 coarsens — the publication order of the two shards is
        // the interleaving under test.
        let adjacent = [
            DomainOp::Refine(OctKey::root().child(0).child(0)),
            DomainOp::Coarsen(OctKey::root().child(1)),
        ];
        assert_eq!(pm_octree::domains::run_batch(&mut t, &adjacent), vec![true, true]);
        // Same domain: a refine and the coarsen that undoes it must
        // execute in input order inside one shard.
        let kk = OctKey::root().child(2).child(2);
        t.refine_many(&[OctKey::root().child(2)]);
        let same = [DomainOp::Refine(kk), DomainOp::Coarsen(kk)];
        assert_eq!(pm_octree::domains::run_batch(&mut t, &same), vec![true, true]);
        let writes: Vec<(OctKey, CellData)> = (0..8)
            .map(|i| {
                (
                    OctKey::root().child(3).child(i),
                    CellData { phi: i as f64 * 0.5 - 1.0, ..Default::default() },
                )
            })
            .collect();
        t.refine_many(&[OctKey::root().child(3)]);
        assert!(t.set_data_many(&writes).iter().all(|&b| b));
        t.persist();
        let leaves = t.leaves_sorted();
        let stats = format!("{:?}", t.store.arena.stats);
        (t.store.arena.clone_media(), leaves, stats)
    }

    let w = Workers::pin(1);
    let baseline = run();
    for workers in [2, 4] {
        w.set(workers);
        let got = run();
        assert_eq!(got.0, baseline.0, "media must be byte-identical under {workers} workers");
        assert_eq!(got.1, baseline.1, "leaves must be identical under {workers} workers");
        assert_eq!(got.2, baseline.2, "MemStats must be identical under {workers} workers");
    }
}

/// The perf half of the invariant: with ≥ 4 cores, 4 workers must finish
/// the same smoke run at least 2× faster than 1 worker. On smaller
/// machines (e.g. 1-core CI containers) the comparison is meaningless —
/// the pool cannot run faster than the hardware — so the assertion is
/// gated on available parallelism and the test degrades to a determinism
/// re-check.
#[test]
fn four_workers_at_least_twice_as_fast_on_big_machines() {
    let w = Workers::pin(1);
    let run = || {
        let t0 = Instant::now();
        let mut c = ClusterSim::new(Scheme::InCore, 8, cfg(5), 0);
        let r = c.run(1);
        (t0.elapsed().as_secs_f64(), r)
    };
    let (secs_1, report_1) = run();
    w.set(4);
    let (secs_4, report_4) = run();
    assert_eq!(report_4, report_1, "speedup must not change results");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "cluster smoke wall-clock: 1 worker {secs_1:.3}s, 4 workers {secs_4:.3}s \
         (speedup {:.2}x on {cores} cores)",
        secs_1 / secs_4.max(1e-9)
    );
    if cores >= 4 {
        assert!(
            secs_4 * 2.0 <= secs_1,
            "4 workers should be ≥2x faster than 1 on {cores} cores: {secs_4:.3}s vs {secs_1:.3}s"
        );
    }
}
