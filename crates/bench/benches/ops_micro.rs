//! Micro-benchmarks of core octree operations across the three
//! implementations (wall-clock; the virtual-clock figures come from the
//! repro binary). Includes the COW ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use pm_octree::{PmConfig, PmOctree};
use pmoctree_baselines::{EtreeOctree, InCoreOctree};
use pmoctree_morton::OctKey;
use pmoctree_nvbm::{DeviceModel, NvbmArena};
use pmoctree_simfs::SimFs;
use std::hint::black_box;

fn refine_coarsen_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("ops_refine_coarsen");
    g.bench_function("pm_octree", |b| {
        let mut t = PmOctree::create(
            NvbmArena::new(16 << 20, DeviceModel::default()),
            PmConfig::builder()
                .dynamic_transform(false)
                .seed_c0(false)
                .build()
                .expect("valid config"),
        );
        t.refine(OctKey::root()).unwrap();
        b.iter(|| {
            t.refine(OctKey::root().child(3)).unwrap();
            t.coarsen(OctKey::root().child(3)).unwrap();
        });
    });
    g.bench_function("in_core", |b| {
        let mut t = InCoreOctree::new();
        t.refine(OctKey::root());
        b.iter(|| {
            assert!(t.refine(OctKey::root().child(3)));
            assert!(t.coarsen(OctKey::root().child(3)));
        });
    });
    g.bench_function("etree", |b| {
        let mut t = EtreeOctree::create(SimFs::on_nvbm());
        t.refine(OctKey::root());
        b.iter(|| {
            assert!(t.refine(OctKey::root().child(3)));
            assert!(t.coarsen(OctKey::root().child(3)));
        });
    });
    g.finish();
}

fn persist_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("ops_persist");
    g.sample_size(20);
    // Ablation (DESIGN.md): persist cost with full sharing (unchanged
    // tree) vs forced rewrite (every leaf touched) — the value of
    // diff-merging.
    g.bench_function("persist_unchanged", |b| {
        let mut t = PmOctree::create(
            NvbmArena::new(64 << 20, DeviceModel::default()),
            PmConfig::builder().dynamic_transform(false).build().expect("valid config"),
        );
        t.refine(OctKey::root()).unwrap();
        for i in 0..8 {
            t.refine(OctKey::root().child(i)).unwrap();
        }
        t.persist();
        b.iter(|| {
            t.persist();
            black_box(t.events.persists)
        });
    });
    g.bench_function("persist_all_dirty", |b| {
        let mut t = PmOctree::create(
            NvbmArena::new(256 << 20, DeviceModel::default()),
            PmConfig::builder().dynamic_transform(false).build().expect("valid config"),
        );
        t.refine(OctKey::root()).unwrap();
        for i in 0..8 {
            t.refine(OctKey::root().child(i)).unwrap();
        }
        t.persist();
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.0;
            t.update_leaves(|_, d| Some(pm_octree::CellData { pressure: x, ..*d }));
            t.persist();
            black_box(t.events.persists)
        });
    });
    g.finish();
}

fn traversal(c: &mut Criterion) {
    let mut g = c.benchmark_group("ops_leaf_sweep");
    g.bench_function("pm_octree_513", |b| {
        let mut t = PmOctree::create(
            NvbmArena::new(16 << 20, DeviceModel::default()),
            PmConfig::builder()
                .dynamic_transform(false)
                .seed_c0(false)
                .build()
                .expect("valid config"),
        );
        t.refine(OctKey::root()).unwrap();
        for i in 0..8 {
            t.refine(OctKey::root().child(i)).unwrap();
        }
        b.iter(|| {
            let mut n = 0usize;
            t.for_each_leaf(|_, _| n += 1);
            black_box(n)
        });
    });
    g.finish();
}

/// Virtual-clock cost of resolving all 6 face neighbors of every leaf,
/// per-key (one root descent each) vs batched (one sorted merge-scan
/// over the leaf index). Printed once per run; the criterion loops
/// below time the in-core wall clock.
fn neighbor_virtual_clock(name: &str, b: &mut dyn pmoctree_amr::OctreeBackend) {
    let leaves = b.leaf_keys_sorted();
    let t0 = b.elapsed_ns();
    let mut n = 0usize;
    for k in &leaves {
        for q in k.face_neighbors() {
            if b.containing_leaf(q).is_some() {
                n += 1;
            }
        }
    }
    let per_key = b.elapsed_ns() - t0;
    let t1 = b.elapsed_ns();
    let m: usize = b.neighbor_leaves_many(&leaves, false).iter().map(|v| v.len()).sum();
    let batched = b.elapsed_ns() - t1;
    assert_eq!(n, m, "per-key and batched neighbor counts must agree");
    eprintln!(
        "ops_neighbor_lookup/{name}: virtual clock per sweep ({} leaves): \
         per-key {per_key} ns, batched {batched} ns ({:.1}x less)",
        leaves.len(),
        per_key as f64 / batched.max(1) as f64
    );
}

fn neighbor_resolution(c: &mut Criterion) {
    use pm_octree::{PmConfig, PmOctree};
    use pmoctree_amr::{construct_uniform, InCoreBackend, OctreeBackend, PmBackend};
    let mut g = c.benchmark_group("ops_neighbor_lookup");
    g.sample_size(20);
    // 4096 leaves; resolve all 6 face neighbors of every leaf. The
    // per-key path answers each query with a root descent; the batched
    // path answers the whole sorted batch with one index merge-scan.
    let mut t = InCoreBackend::new();
    construct_uniform(&mut t, 4);
    let mut pm = PmBackend::new(PmOctree::create(
        NvbmArena::new(64 << 20, DeviceModel::default()),
        PmConfig::builder().dynamic_transform(false).build().expect("valid config"),
    ));
    construct_uniform(&mut pm, 4);
    neighbor_virtual_clock("in_core", &mut t);
    neighbor_virtual_clock("pm_octree", &mut pm);
    let leaves = t.leaf_keys_sorted();
    g.bench_function("per_key_descent", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for k in &leaves {
                for q in k.face_neighbors() {
                    if t.containing_leaf(q).is_some() {
                        n += 1;
                    }
                }
            }
            black_box(n)
        });
    });
    g.bench_function("batched_index", |b| {
        b.iter(|| black_box(t.neighbor_leaves_many(&leaves, false).len()));
    });
    g.finish();
}

fn morton_kernels(c: &mut Criterion) {
    use pmoctree_morton::simd::{self, Dispatch};
    let mut g = c.benchmark_group("ops_morton_kernels");
    // Same kernels repro `morton` reports, under Criterion's statistics:
    // each batch kernel timed with the scalar fallback pinned and with
    // whatever the hardware supports. On a CPU without BMI2+AVX2 the two
    // variants coincide.
    let keys = morton_sample_keys(1 << 14);
    let items: Vec<([u64; 3], u8)> = keys.iter().map(|k| (k.coords(), k.level())).collect();
    let rev: Vec<OctKey> = keys.iter().rev().copied().collect();
    for (name, d) in [("scalar", Dispatch::Scalar), ("simd", Dispatch::hardware())] {
        g.bench_function(format!("encode_{name}"), |b| {
            b.iter(|| black_box(simd::encode_many_with(d, black_box(&items))));
        });
        g.bench_function(format!("decode_{name}"), |b| {
            b.iter(|| black_box(simd::decode_many_with(d, black_box(&keys))));
        });
        g.bench_function(format!("cmp_{name}"), |b| {
            b.iter(|| black_box(simd::cmp_keys_many_with(d, black_box(&keys), black_box(&rev))));
        });
    }
    g.finish();
}

/// Fixed-seed random keys (splitmix64) so every Criterion run benches the
/// same batch.
fn morton_sample_keys(n: usize) -> Vec<OctKey> {
    let mut s = 0u64;
    let mut next = move || {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            let level = 1 + (next() % OctKey::MAX_LEVEL as u64) as u8;
            let mask = (1u64 << level) - 1;
            OctKey::from_coords([next() & mask, next() & mask, next() & mask], level)
        })
        .collect()
}

fn single_descent(c: &mut Criterion) {
    let mut g = c.benchmark_group("ops_single_descent");
    // One containing_leaf call on a level-5 uniform tree: the operation
    // the hot/cold octant layout makes cheaper (one navigation line per
    // hop instead of the whole record).
    let mut t = PmOctree::create(
        NvbmArena::new(256 << 20, DeviceModel::default()),
        PmConfig::builder().dynamic_transform(false).build().expect("valid config"),
    );
    fn refine_to(t: &mut PmOctree, key: OctKey, depth: u8) {
        if key.level() < depth {
            t.refine(key).unwrap();
            for c in key.children().collect::<Vec<_>>() {
                refine_to(t, c, depth);
            }
        }
    }
    refine_to(&mut t, OctKey::root(), 5);
    let probe = OctKey::root().first_descendant(OctKey::MAX_LEVEL);
    g.bench_function("containing_leaf", |b| {
        b.iter(|| black_box(t.containing_leaf(black_box(probe))));
    });
    g.finish();
}

criterion_group!(
    benches,
    refine_coarsen_cycle,
    persist_cost,
    traversal,
    neighbor_resolution,
    morton_kernels,
    single_descent
);
criterion_main!(benches);
