//! Fig 8/9 bench: strong-scaling cluster steps (fixed problem size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmoctree_bench::run_point;
use pmoctree_cluster::Scheme;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_strong_scaling");
    g.sample_size(10);
    for procs in [2usize, 8] {
        g.bench_with_input(BenchmarkId::new("pm-octree", procs), &procs, |b, &procs| {
            b.iter(|| black_box(run_point(Scheme::pm_default(), procs, 5, 2)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
