//! Table 2 bench: raw device-model costs (wall time of the emulator and
//! the virtual cost it charges).

use criterion::{criterion_group, criterion_main, Criterion};
use pmoctree_nvbm::{DeviceModel, NvbmArena};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_device");
    g.sample_size(20);
    g.bench_function("nvbm_line_write", |b| {
        let mut a = NvbmArena::new(1 << 20, DeviceModel::default());
        let buf = [7u8; 64];
        let mut off = 4096u64;
        b.iter(|| {
            a.write(black_box(off), &buf);
            off = 4096 + (off + 64) % (1 << 19);
        });
    });
    g.bench_function("nvbm_line_read", |b| {
        let mut a = NvbmArena::new(1 << 20, DeviceModel::default());
        let mut buf = [0u8; 64];
        b.iter(|| {
            a.read(black_box(8192), &mut buf);
            black_box(buf[0]);
        });
    });
    g.bench_function("flush_1k_lines", |b| {
        let mut a = NvbmArena::new(4 << 20, DeviceModel::default());
        b.iter(|| {
            for i in 0..1024u64 {
                a.write(4096 + i * 64, &[1u8; 64]);
            }
            a.flush_all();
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
