//! Fig 10 bench: a droplet run at different C0 DRAM budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_octree::{PmConfig, PmOctree};
use pmoctree_amr::PmBackend;
use pmoctree_bench::{sim_cfg, ARENA_BYTES};
use pmoctree_nvbm::{DeviceModel, NvbmArena};
use pmoctree_solver::Simulation;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_dram_size");
    g.sample_size(10);
    for c0 in [64usize, 1024, 16384] {
        g.bench_with_input(BenchmarkId::new("pm_c0_octants", c0), &c0, |b, &c0| {
            b.iter(|| {
                let sim = Simulation::new(sim_cfg(3, 4));
                let mut t = PmBackend::new(PmOctree::create(
                    NvbmArena::new(ARENA_BYTES, DeviceModel::default()),
                    PmConfig::builder().c0_capacity_octants(c0).build().expect("valid config"),
                ));
                black_box(sim.run(&mut t))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
