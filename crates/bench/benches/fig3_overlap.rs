//! Fig 3 bench: one droplet time step with a per-step persist (the
//! operation whose cost the overlap/sharing machinery amortizes).

use criterion::{criterion_group, criterion_main, Criterion};
use pmoctree_bench::fig3_overlap;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_overlap");
    g.sample_size(10);
    g.bench_function("droplet_8steps_persist_each", |b| {
        b.iter(|| black_box(fig3_overlap(8, 4)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
