//! §5.6 bench: failure recovery of the three schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use pmoctree_bench::recovery;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.sample_size(10);
    g.bench_function("kill_at_step12_all_schemes", |b| {
        b.iter(|| black_box(recovery(4, 12)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
