//! Fig 6/7 bench: weak-scaling cluster steps for the three schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmoctree_bench::run_point;
use pmoctree_cluster::Scheme;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_weak_scaling");
    g.sample_size(10);
    for (procs, level) in [(1usize, 3u8), (4, 4)] {
        for scheme in [Scheme::pm_default(), Scheme::InCore, Scheme::Etree] {
            g.bench_with_input(
                BenchmarkId::new(scheme.name(), procs),
                &(procs, level),
                |b, &(procs, level)| {
                    b.iter(|| black_box(run_point(scheme, procs, level, 2)));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
