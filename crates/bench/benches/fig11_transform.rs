//! Fig 11 bench: droplet run with and without the dynamic layout
//! transformation under a tight DRAM budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmoctree_bench::fig11_transform;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_transform");
    g.sample_size(10);
    for level in [4u8, 5] {
        g.bench_with_input(BenchmarkId::new("both_arms", level), &level, |b, &level| {
            b.iter(|| black_box(fig11_transform(&[level], 0.15, 2)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
