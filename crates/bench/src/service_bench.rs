//! Multi-tenant service benchmark (`repro service`).
//!
//! Drives the [`StateService`] front-end with a Zipf-skewed tenant
//! workload (s ≈ 1.0 — a handful of hot tenants absorb most writes,
//! a long tail is touched rarely) and reports, all on the **virtual**
//! clock so the output is machine-independent:
//!
//! * command throughput (ops per virtual second),
//! * p50/p99 per-command latency — most commands only stage bytes, the
//!   one that fills the batch pays the root-table swap, so the tail
//!   exposes the batching amortisation directly,
//! * mean bytes written per published commit (the COW root-swap cost
//!   the batched front-end amortises over `batch_capacity` commands).
//!
//! The driver doubles as an MVCC correctness gate: at a fixed cadence it
//! pins a snapshot of the hottest tenant, lets hundreds of skewed
//! writes and several batch commits land on top, rereads the snapshot,
//! and requires byte-identical results ([`ServiceBench::snapshot_ok`]).
//! Quota pressure is exercised by an oversized burst write every 256
//! ops, which the quota check must reject before touching media.
//!
//! Everything is driven by one xorshift stream from a fixed seed and a
//! single thread, so `BENCH_service.json` is byte-identical across
//! worker-pool sizes (the `ci.sh` determinism gate diffs a 1-worker and
//! a 4-worker run).

use pm_rt::{ServiceCmd, ServiceConfig, StateService};
use pmoctree_nvbm::{DeviceModel, NvbmArena};

/// Scale knobs for the service benchmark.
#[derive(Clone, Debug)]
pub struct ServiceBenchConfig {
    /// Registered tenants (the issue's acceptance floor is 100).
    pub tenants: usize,
    /// Commands submitted after setup.
    pub ops: usize,
    /// Commands per batch (one root swap each).
    pub batch_capacity: usize,
    /// Distinct roots per tenant the workload cycles over.
    pub roots_per_tenant: usize,
    /// Payload bytes of a regular write.
    pub payload: usize,
    /// Zipf skew exponent over tenant ranks.
    pub zipf_s: f64,
    /// Per-tenant byte quota (class-rounded accounting).
    pub quota: u64,
    /// Emulated device size.
    pub arena_bytes: usize,
    /// Xorshift seed for the whole workload.
    pub seed: u64,
    /// Ops between snapshot-isolation checks.
    pub check_interval: usize,
    /// Ops a pinned snapshot stays live before the reread.
    pub check_span: usize,
}

impl ServiceBenchConfig {
    /// CI-sized run: still ≥100 tenants, fewer ops.
    pub fn smoke() -> Self {
        ServiceBenchConfig {
            tenants: 120,
            ops: 20_000,
            batch_capacity: 64,
            roots_per_tenant: 4,
            payload: 96,
            zipf_s: 1.0,
            quota: 4 << 10,
            arena_bytes: 8 << 20,
            seed: 0x5eed_5e11_ce00_0001,
            check_interval: 2_500,
            check_span: 600,
        }
    }

    /// Default run.
    pub fn full() -> Self {
        ServiceBenchConfig {
            tenants: 256,
            ops: 200_000,
            batch_capacity: 256,
            roots_per_tenant: 4,
            payload: 96,
            zipf_s: 1.0,
            quota: 4 << 10,
            arena_bytes: 16 << 20,
            seed: 0x5eed_5e11_ce00_0001,
            check_interval: 10_000,
            check_span: 2_000,
        }
    }
}

/// Benchmark outcome; every field is virtual-clock or count data, so
/// the serialized form is deterministic across machines and worker
/// counts.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServiceBench {
    /// Registered tenants.
    pub tenants: usize,
    /// Zipf exponent the workload used.
    pub zipf_s: f64,
    /// Commands submitted (excluding setup).
    pub ops: u64,
    /// Batches flushed (root swaps published + empty flushes skipped).
    pub batches: u64,
    /// Root-table swaps published.
    pub commits: u64,
    /// Total virtual time of the measured window, seconds.
    pub total_virtual_secs: f64,
    /// Commands per virtual second.
    pub ops_per_virtual_sec: f64,
    /// Median per-command virtual latency, ns. Near zero by design:
    /// staged writes are absorbed by the dirty-line cache, the flush
    /// command pays for the whole batch.
    pub p50_ns: u64,
    /// 99th-percentile per-command virtual latency, ns (commands that
    /// trigger the batch flush pay the swap here).
    pub p99_ns: u64,
    /// Median latency of batch-flushing commands (the root-swap cost).
    pub commit_p50_ns: u64,
    /// 99th-percentile latency of batch-flushing commands.
    pub commit_p99_ns: u64,
    /// Bytes written across all root swaps.
    pub bytes_written: u64,
    /// Mean bytes per published swap.
    pub bytes_per_commit: f64,
    /// Writes rejected by the per-tenant quota (never reached media).
    pub quota_rejections: u64,
    /// Fraction of ops that hit the hottest tenant (documents the skew).
    pub hot_tenant_share: f64,
    /// Snapshot-isolation rereads performed.
    pub snapshot_checks: u64,
    /// Whether every pinned snapshot reread byte-identically.
    pub snapshot_ok: bool,
    /// Wear / write-amplification attribution of the service's device.
    pub wear: pmoctree_nvbm::WearReport,
    /// Per-tenant labelled series published by the service (flush
    /// latency and write-bytes histograms, quota-rejection counters),
    /// summarised as the number of distinct (metric, tenant) series.
    pub labeled_series: u64,
}

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cumulative Zipf(s) distribution over `n` ranks; sample by inverting
/// a uniform draw with binary search.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(n);
    for rank in 1..=n {
        acc += 1.0 / (rank as f64).powf(s);
        cdf.push(acc);
    }
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

fn zipf_sample(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

fn tenant_name(i: usize) -> String {
    format!("tenant{i:04}")
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * p / 100).min(sorted.len() - 1);
    sorted[idx]
}

/// Run the benchmark (single-threaded by construction — the service
/// front-end serialises all tenants through one batch queue, which is
/// exactly the design point being measured).
pub fn service_bench(cfg: &ServiceBenchConfig) -> ServiceBench {
    let mut arena = NvbmArena::new(cfg.arena_bytes, DeviceModel::default());
    // Tracing on: the service publishes per-tenant flush-latency /
    // write-bytes histograms and quota counters through the tracer.
    arena.tracer = pmoctree_nvbm::Tracer::enabled(0);
    let scfg = ServiceConfig::builder()
        .max_tenants(cfg.tenants)
        .default_quota(cfg.quota)
        .batch_capacity(cfg.batch_capacity)
        .build()
        .expect("valid service config");
    let mut svc = StateService::create(&mut arena, scfg).expect("service create");

    // Setup: register every tenant (auto-flushes as batches fill).
    for i in 0..cfg.tenants {
        svc.submit(&mut arena, ServiceCmd::Create { tenant: tenant_name(i), quota: None })
            .expect("create tenant");
    }
    svc.flush_batch(&mut arena).expect("setup flush");
    let setup_commits = svc.stats().commits;
    let setup_bytes = svc.stats().bytes_written;

    let cdf = zipf_cdf(cfg.tenants, cfg.zipf_s);
    let mut rng = Rng(cfg.seed | 1);
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.ops);
    let mut commit_latencies: Vec<u64> = Vec::new();
    let mut hot_hits = 0u64;
    let hot = tenant_name(0);

    // A pinned snapshot of the hottest tenant awaiting its reread:
    // (snapshot, captured bytes, op index to reread at).
    type PendingCheck = (pm_rt::Snapshot, Vec<(String, Option<Vec<u8>>)>, usize);
    let mut pending_check: Option<PendingCheck> = None;
    let mut snapshot_checks = 0u64;
    let mut snapshot_ok = true;

    let t_start = arena.clock.now_ns();
    for op in 0..cfg.ops {
        let t = zipf_sample(&cdf, rng.next_f64());
        let tenant = tenant_name(t);
        if t == 0 {
            hot_hits += 1;
        }
        let root = format!("r{}", rng.next_u64() as usize % cfg.roots_per_tenant);
        let cmd = if op % 256 == 255 {
            // Oversized burst: always exceeds the quota, must be
            // rejected before touching media.
            ServiceCmd::Put { tenant, root, bytes: vec![0xFF; 2 * cfg.quota as usize] }
        } else if op % 16 == 7 {
            ServiceCmd::Query { tenant, root }
        } else {
            let mut bytes = vec![0u8; cfg.payload];
            let tag = (op as u64).to_le_bytes();
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = tag[i % 8] ^ i as u8;
            }
            ServiceCmd::Put { tenant, root, bytes }
        };
        let t0 = arena.clock.now_ns();
        let flushed = svc.submit(&mut arena, cmd).expect("submit");
        let dt = arena.clock.now_ns() - t0;
        latencies.push(dt);
        if flushed.is_some() {
            commit_latencies.push(dt);
        }

        // Snapshot-isolation gate: pin, let skewed writes land, reread.
        if pending_check.is_none() && op % cfg.check_interval == 0 {
            let snap = svc.snapshot(&mut arena, &hot).expect("snapshot");
            let names: Vec<String> = snap.names().map(str::to_string).collect();
            let captured: Vec<(String, Option<Vec<u8>>)> = names
                .into_iter()
                .map(|n| {
                    let v = snap.get_bytes(&mut arena, &n).expect("snapshot read");
                    (n, v)
                })
                .collect();
            pending_check = Some((snap, captured, op + cfg.check_span));
        } else if let Some((_, _, due)) = &pending_check {
            if op >= *due {
                let (snap, captured, _) = pending_check.take().expect("pending check");
                snapshot_checks += 1;
                for (name, want) in &captured {
                    let got = snap.get_bytes(&mut arena, name).expect("snapshot reread");
                    if got != *want {
                        snapshot_ok = false;
                    }
                }
                drop(snap);
                svc.collect(&mut arena);
            }
        }
    }
    svc.flush_batch(&mut arena).expect("final flush");
    let total_ns = arena.clock.now_ns() - t_start;

    latencies.sort_unstable();
    commit_latencies.sort_unstable();
    let stats = svc.stats();
    let commits = stats.commits - setup_commits;
    let bytes_written = stats.bytes_written - setup_bytes;
    let total_virtual_secs = total_ns as f64 / 1e9;
    ServiceBench {
        tenants: cfg.tenants,
        zipf_s: cfg.zipf_s,
        ops: cfg.ops as u64,
        batches: stats.batches,
        commits,
        total_virtual_secs,
        ops_per_virtual_sec: cfg.ops as f64 / total_virtual_secs,
        p50_ns: percentile(&latencies, 50),
        p99_ns: percentile(&latencies, 99),
        commit_p50_ns: percentile(&commit_latencies, 50),
        commit_p99_ns: percentile(&commit_latencies, 99),
        bytes_written,
        bytes_per_commit: if commits == 0 { 0.0 } else { bytes_written as f64 / commits as f64 },
        quota_rejections: stats.quota_rejections,
        hot_tenant_share: hot_hits as f64 / cfg.ops as f64,
        snapshot_checks,
        snapshot_ok,
        wear: arena.stats.wear_report(),
        labeled_series: labeled_series(&arena),
    }
}

/// Count the distinct per-tenant labelled series the service published
/// on the arena's tracer (counters + histograms).
fn labeled_series(arena: &NvbmArena) -> u64 {
    let m = arena.tracer.metrics();
    (m.labeled_counters().count() + m.labeled_histograms().count()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServiceBenchConfig {
        ServiceBenchConfig {
            tenants: 100,
            ops: 3_000,
            batch_capacity: 32,
            check_interval: 500,
            check_span: 200,
            arena_bytes: 4 << 20,
            ..ServiceBenchConfig::smoke()
        }
    }

    #[test]
    fn zipf_is_skewed_and_normalised() {
        let cdf = zipf_cdf(100, 1.0);
        assert!((cdf[99] - 1.0).abs() < 1e-12);
        // Rank 1 mass under s=1.0 over 100 ranks is ~19%.
        assert!(cdf[0] > 0.15 && cdf[0] < 0.25, "cdf[0] = {}", cdf[0]);
        let mut r = Rng(42);
        let hits = (0..10_000).filter(|_| zipf_sample(&cdf, r.next_f64()) == 0).count();
        assert!(hits > 1_000, "hot tenant only drew {hits}/10000");
    }

    #[test]
    fn bench_meets_the_acceptance_shape() {
        let b = service_bench(&tiny());
        assert!(b.tenants >= 100);
        assert!(b.snapshot_checks > 0 && b.snapshot_ok, "snapshot isolation violated");
        assert!(b.quota_rejections > 0, "quota path never exercised");
        assert!(b.commits > 0 && b.bytes_per_commit > 0.0);
        assert!(b.p99_ns >= b.p50_ns);
        assert!(b.ops_per_virtual_sec > 0.0);
        assert!(b.hot_tenant_share > 0.1, "Zipf skew missing: {}", b.hot_tenant_share);
        assert!(b.labeled_series > 0, "no per-tenant labelled series published");
        assert!(b.wear.bytes_committed > 0, "wear attribution recorded nothing");
        let committed: u64 = b.wear.bytes_by_region.iter().map(|r| r.bytes).sum();
        assert_eq!(committed, b.wear.bytes_committed, "region breakdown must sum to total");
    }

    #[test]
    fn bench_is_deterministic() {
        let a = service_bench(&tiny());
        let b = service_bench(&tiny());
        assert_eq!(crate::json::service_json(&a), crate::json::service_json(&b));
    }
}
