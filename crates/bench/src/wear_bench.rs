//! Wear-leveling benchmark (`repro wear-level`).
//!
//! Measures the two endurance levers of the log-structured region
//! manager against the recorded pre-log baselines, on the **virtual**
//! clock so the output is machine-independent and part of the `ci.sh`
//! 1-vs-4-worker byte-diff gates:
//!
//! * **rt-heap write volume** — the multi-tenant service workload's
//!   bytes written per published commit. The append-only delta chain
//!   replaces the old whole-table rewrite, so this is where the log
//!   pays for itself ([`BASELINE_SERVICE_BYTES_PER_COMMIT`]).
//! * **wear-histogram flatness** — the droplet workload's hottest-block
//!   over mean-block commit ratio (1.0 = perfectly even). Header-write
//!   batching plus cold-first free-list steering flatten it
//!   ([`BASELINE_DROPLET_FLATNESS`]).
//!
//! The run also surfaces the wear GC's own counters (occupancy
//! watermark, relocations performed, bytes moved) as the
//! `wear_leveling` section of the `wear-level` driver entry in
//! `BENCH_wear.json`, which `repro trace-check` requires for that
//! driver.

use crate::experiments::droplet_untraced;
use crate::service_bench::{service_bench, ServiceBenchConfig};
use pmoctree_nvbm::WearReport;

/// Mean bytes written per published commit on the smoke service
/// workload *before* the log-structured heap (whole-table rewrite per
/// commit), recorded for the delta readout.
pub const BASELINE_SERVICE_BYTES_PER_COMMIT: f64 = 20_777.0;

/// The same pre-log baseline at full scale (`repro service`, 782
/// commits, 40,450,048 rt-heap bytes).
pub const BASELINE_SERVICE_BYTES_PER_COMMIT_FULL: f64 = 51_726.0;

/// Droplet wear-histogram flatness (hottest block / mean) before
/// header-write batching and cold-first steering.
pub const BASELINE_DROPLET_FLATNESS: f64 = 1.29;

/// The same pre-batching baseline at full scale (10 steps, level 5:
/// hottest block 320 commits, mean 144.8). At this scale the hottest
/// line is the octree bump region, which the header-batching lever does
/// not touch, so the full-scale flatness barely moves.
pub const BASELINE_DROPLET_FLATNESS_FULL: f64 = 2.21;

/// Scale knobs for the wear-leveling benchmark.
#[derive(Clone, Debug)]
pub struct WearLevelConfig {
    /// The service workload measured for bytes-per-commit.
    pub service: ServiceBenchConfig,
    /// Droplet adaptation steps measured for wear flatness.
    pub droplet_steps: usize,
    /// Maximum droplet refinement level.
    pub droplet_level: u8,
    /// Pre-log bytes-per-commit recorded at this scale.
    pub baseline_bytes_per_commit: f64,
    /// Pre-batching droplet flatness recorded at this scale.
    pub baseline_flatness: f64,
}

impl WearLevelConfig {
    /// CI-sized run (the scale [`BASELINE_SERVICE_BYTES_PER_COMMIT`]
    /// was recorded at).
    pub fn smoke() -> Self {
        WearLevelConfig {
            service: ServiceBenchConfig::smoke(),
            droplet_steps: 3,
            droplet_level: 4,
            baseline_bytes_per_commit: BASELINE_SERVICE_BYTES_PER_COMMIT,
            baseline_flatness: BASELINE_DROPLET_FLATNESS,
        }
    }

    /// Default run, against the full-scale baselines.
    pub fn full() -> Self {
        WearLevelConfig {
            service: ServiceBenchConfig::full(),
            droplet_steps: 10,
            droplet_level: 5,
            baseline_bytes_per_commit: BASELINE_SERVICE_BYTES_PER_COMMIT_FULL,
            baseline_flatness: BASELINE_DROPLET_FLATNESS_FULL,
        }
    }
}

/// The wear GC's own activity counters — the `wear_leveling` section of
/// the `wear-level` driver entry in `BENCH_wear.json`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct WearLeveling {
    /// Log occupancy fraction above which the compaction pass relocates
    /// live records ([`pm_rt::COMPACT_WATERMARK`]).
    pub occupancy_watermark: f64,
    /// Wear-leveling relocations performed (hot blobs copied off the
    /// hottest block, plus compaction moves).
    pub relocations: u64,
    /// Live bytes moved by those relocations.
    pub bytes_moved: u64,
}

/// Benchmark outcome; every field is virtual-clock or count data, so
/// the serialized form is deterministic across machines and worker
/// counts.
#[derive(Clone, Debug, serde::Serialize)]
pub struct WearLevelBench {
    /// Root-table swaps the service workload published.
    pub service_commits: u64,
    /// Bytes the service workload wrote across those swaps.
    pub service_bytes_written: u64,
    /// Mean bytes per published commit.
    pub service_bytes_per_commit: f64,
    /// Pre-log baseline for the same smoke workload.
    pub baseline_bytes_per_commit: f64,
    /// Reduction vs the baseline, percent (positive = fewer bytes).
    pub bytes_per_commit_reduction_percent: f64,
    /// Whether every pinned snapshot in the service workload reread
    /// byte-identically (relocation must never perturb a pin).
    pub service_snapshot_ok: bool,
    /// Droplet adaptation steps run.
    pub droplet_steps: usize,
    /// Final droplet leaf count.
    pub droplet_elements: usize,
    /// Droplet wear-histogram flatness (hottest / mean; 1.0 = even).
    pub droplet_flatness: f64,
    /// Pre-batching baseline flatness for the same workload.
    pub baseline_flatness: f64,
    /// Wear attribution of the droplet device (the flatness readout).
    pub wear: WearReport,
    /// The wear GC's counters, from the service device (where the
    /// rt-heap churn lives).
    pub leveling: WearLeveling,
}

/// Run the benchmark: the service workload for the rt-heap
/// bytes-per-commit readout, then the droplet workload for the
/// wear-flatness readout. Single-threaded, virtual-clock only.
pub fn wear_level_bench(cfg: &WearLevelConfig) -> WearLevelBench {
    let svc = service_bench(&cfg.service);
    let leveling = WearLeveling {
        occupancy_watermark: pm_rt::COMPACT_WATERMARK,
        relocations: svc.wear.relocations,
        bytes_moved: svc.wear.relocated_bytes,
    };
    let droplet = droplet_untraced(cfg.droplet_steps, cfg.droplet_level);
    WearLevelBench {
        service_commits: svc.commits,
        service_bytes_written: svc.bytes_written,
        service_bytes_per_commit: svc.bytes_per_commit,
        baseline_bytes_per_commit: cfg.baseline_bytes_per_commit,
        bytes_per_commit_reduction_percent: 100.0
            * (1.0 - svc.bytes_per_commit / cfg.baseline_bytes_per_commit),
        service_snapshot_ok: svc.snapshot_ok,
        droplet_steps: cfg.droplet_steps,
        droplet_elements: droplet.elements,
        droplet_flatness: droplet.wear.flatness,
        baseline_flatness: cfg.baseline_flatness,
        wear: droplet.wear,
        leveling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WearLevelConfig {
        WearLevelConfig {
            service: ServiceBenchConfig {
                tenants: 100,
                ops: 3_000,
                batch_capacity: 32,
                check_interval: 500,
                check_span: 200,
                arena_bytes: 4 << 20,
                ..ServiceBenchConfig::smoke()
            },
            droplet_steps: 2,
            droplet_level: 3,
            ..WearLevelConfig::smoke()
        }
    }

    #[test]
    fn wear_level_bench_exercises_both_levers() {
        let b = wear_level_bench(&tiny());
        assert!(b.service_commits > 0 && b.service_bytes_per_commit > 0.0);
        assert!(b.service_snapshot_ok, "relocation perturbed a pinned snapshot");
        assert!(b.leveling.relocations > 0, "wear GC never relocated a blob");
        assert!(b.leveling.bytes_moved > 0);
        assert!(
            b.leveling.occupancy_watermark > 0.0 && b.leveling.occupancy_watermark <= 1.0,
            "watermark out of range: {}",
            b.leveling.occupancy_watermark
        );
        assert!(b.droplet_flatness >= 1.0, "flatness is max/mean: {}", b.droplet_flatness);
        assert!(b.wear.bytes_committed > 0);
    }

    #[test]
    fn wear_level_bench_is_deterministic() {
        let a = wear_level_bench(&tiny());
        let b = wear_level_bench(&tiny());
        assert_eq!(
            crate::json::wear_level_json(&a),
            crate::json::wear_level_json(&b),
            "wear-level output must be byte-stable"
        );
    }
}
