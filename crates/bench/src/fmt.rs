//! Table printers: render experiment rows in the paper's shape.

use crate::experiments::*;

/// Render Table 2.
pub fn table2_str(t: &Table2) -> String {
    let mut s = String::new();
    s.push_str("Table 2: DRAM/NVBM characteristics (model in force)\n");
    s.push_str(&format!(
        "  DRAM : read {} ns, write {} ns per cacheline\n",
        t.model.dram.read_ns, t.model.dram.write_ns
    ));
    s.push_str(&format!(
        "  NVBM : read {} ns, write {} ns per cacheline (write = {:.1}x DRAM)\n",
        t.model.nvbm.read_ns,
        t.model.nvbm.write_ns,
        t.model.nvbm.write_ns as f64 / t.model.dram.write_ns as f64
    ));
    s.push_str(&format!(
        "  endurance: {:.0e} writes/bit\n  measured: one-line write {} ns, read {} ns\n",
        t.model.endurance_writes_per_bit as f64, t.measured_write_ns, t.measured_read_ns
    ));
    s
}

/// Render the Figure 3 series.
pub fn fig3_str(rows: &[Fig3Row]) -> String {
    let mut s = String::from(
        "Fig 3: overlap ratio & memory per 1000 octants over time steps\n\
         step | elements | overlap | mem/1000 oct (B) | 2-copies (B) | reduction\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>4} | {:>8} | {:>6.1}% | {:>16.0} | {:>12.0} | {:>8.2}x\n",
            r.step,
            r.elements,
            100.0 * r.overlap,
            r.mem_per_1000,
            r.two_copies_per_1000,
            r.two_copies_per_1000 / r.mem_per_1000.max(1.0),
        ));
    }
    let min = rows.iter().map(|r| r.overlap).fold(1.0, f64::min);
    let max = rows.iter().map(|r| r.overlap).fold(0.0, f64::max);
    s.push_str(&format!(
        "overlap range {:.0}%..{:.0}%  (paper: 39%..99%)\n",
        100.0 * min,
        100.0 * max
    ));
    s
}

/// Render the write-fraction statistic plus the traversal counters.
pub fn write_fraction_str(w: &WriteFraction) -> String {
    format!(
        "S1 write fraction during meshing+solve: avg {:.0}%, max {:.0}% (paper: 41% avg, 72% max); \
         whole-run aggregate incl. balance verification: {:.0}%\n\
         octant location: {} root descents, {} leaf-index hits \
         ({} index rebuilds over {} octants)\n\
         descent cost: {} lines charged over {} descents => {:.2} charged lines/descent\n",
        100.0 * w.avg,
        100.0 * w.max,
        100.0 * w.aggregate,
        w.trav.root_descents,
        w.trav.index_hits,
        w.trav.index_rebuilds,
        w.trav.index_rebuild_octants,
        w.trav.descent_lines,
        w.trav.root_descents,
        w.trav.charged_lines_per_descent(),
    )
}

/// Render the layout ablation.
pub fn layout_str(l: &LayoutAblation) -> String {
    format!(
        "S3.3 layout ablation: refinement burst served {} NVBM write-lines (oblivious) vs {} \
         (locality-aware) => oblivious does +{:.0}% more NVBM writes (paper: +89%)\n",
        l.oblivious_writes,
        l.aware_writes,
        l.extra_percent()
    )
}

/// Render scaling rows (Figs 6/8/9), grouped by processor count.
pub fn scaling_str(title: &str, rows: &[ScalingRow]) -> String {
    let mut s = format!(
        "{title}\nprocs | elements | scheme       | exec (virt s) | refine% bal% part% solve% persist%\n"
    );
    for r in rows {
        s.push_str(&format!(
            "{:>5} | {:>8} | {:<12} | {:>13.3} | {:>6.1} {:>5.1} {:>5.1} {:>6.1} {:>7.1}\n",
            r.procs,
            r.elements,
            r.scheme,
            r.exec_secs,
            r.phase_percent[0],
            r.phase_percent[1],
            r.phase_percent[2],
            r.phase_percent[3],
            r.phase_percent[4],
        ));
    }
    s
}

/// Render the cluster smoke: the scaling rows plus the wall-clock /
/// worker-count line (stdout only — these two never enter the JSON, so
/// the emitted file stays byte-identical across worker counts).
pub fn cluster_smoke_str(s: &ClusterSmoke) -> String {
    let mut out = scaling_str("Cluster smoke (fixed 4-rank point; determinism gate)", &s.rows);
    out.push_str(&format!(
        "workers: {}  wall-clock: {:.3}s (reported here only; never serialized)\n",
        s.workers, s.wall_secs
    ));
    out
}

/// Render the Morton kernel microbenchmark (scalar vs SIMD dispatch).
pub fn morton_str(b: &crate::morton_bench::MortonBench) -> String {
    let mut s = format!(
        "Morton kernels: scalar vs {} ({} keys, best of {} iters; real ns, not virtual)\nkernel   | scalar ns/key | simd ns/key | speedup\n",
        b.dispatch, b.keys, b.iters
    );
    for r in &b.rows {
        s.push_str(&format!(
            "{:<8} | {:>13.2} | {:>11.2} | {:>6.2}x\n",
            r.kernel, r.scalar_ns_per_key, r.simd_ns_per_key, r.speedup
        ));
    }
    s
}

/// Render Figure 10.
pub fn fig10_str(rows: &[Fig10Row]) -> String {
    let mut s = String::from(
        "Fig 10: impact of DRAM (C0) size\nconfig             | exec (virt s) | merges\n",
    );
    for r in rows {
        let label = match r.c0_octants {
            Some(n) => format!("pm C0={:>7} oct", n),
            None => format!("{:<18}", r.scheme),
        };
        s.push_str(&format!("{label:<18} | {:>13.3} | {:>6}\n", r.exec_secs, r.merges));
    }
    s
}

/// Render Figure 11.
pub fn fig11_str(rows: &[Fig11Row]) -> String {
    let mut s = String::from(
        "Fig 11: dynamic transformation off/on\nelements | without (s) | with (s) | time saved | NVBM writes saved\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>8} | {:>11.3} | {:>8.3} | {:>9.1}% | {:>16.1}%\n",
            r.elements,
            r.without_secs,
            r.with_secs,
            r.time_saving_percent(),
            r.write_saving_percent(),
        ));
    }
    s.push_str("(paper: ~0% at small sizes; -24.7% time, -31% writes at the largest)\n");
    s
}

/// Render the §5.6 recovery table.
pub fn recovery_str(rows: &[pmoctree_cluster::RecoveryReport]) -> String {
    let mut s =
        String::from("S5.6 failure recovery (virtual s)\nscheme       | same node | new node\n");
    for r in rows {
        s.push_str(&format!(
            "{:<12} | {:>9.4} | {}\n",
            r.scheme,
            r.same_node_secs,
            r.new_node_secs.map_or("unrecoverable".to_string(), |t| format!("{t:>8.4}")),
        ));
    }
    s.push_str("(paper: in-core 42.9s / 42.9s; pm 2.1s / 3.48s; etree ~0 / unrecoverable)\n");
    s
}

/// Render the sampling ablation.
pub fn sampling_str(rows: &[SamplingRow]) -> String {
    let mut s = String::from("Ablation: N_sample sweep\nN    | detected | sampling NVBM reads\n");
    for r in rows {
        s.push_str(&format!("{:<4} | {:>8} | {:>6}\n", r.n_sample, r.detected, r.sample_reads));
    }
    s
}

/// Render the snapshot-cadence ablation.
pub fn snapshot_interval_str(rows: &[SnapshotRow]) -> String {
    let mut s = String::from(
        "Ablation: checkpoint cadence (in-core snapshots vs per-step PM persist)\n\
         scheme            | exec (virt s) | max steps lost on crash\n",
    );
    for r in rows {
        let label = match r.interval {
            Some(i) => format!("in-core every {i:>2}"),
            None => "pm-octree (every)".to_string(),
        };
        s.push_str(&format!("{label:<17} | {:>13.4} | {}\n", r.exec_secs, r.max_lost_steps));
    }
    s
}

/// Render the version-count ablation.
pub fn versions_str(rows: &[VersionRow]) -> String {
    let mut s =
        String::from("Ablation: retained versions vs live NVBM bytes\nversions | live bytes\n");
    for r in rows {
        s.push_str(&format!("{:>8} | {:>10}\n", r.versions, r.live_bytes));
    }
    s.push_str("(PM-octree keeps 2; each extra version retains its exclusive delta)\n");
    s
}

/// Render the traced droplet run: flat span attribution, persist
/// coverage, and the per-timestep table reconstructed from the journal.
pub fn droplet_str(run: &DropletRun) -> String {
    let mut s = format!(
        "Traced droplet run: {} steps, {} elements, {:.3} virtual s, {} journal events\n",
        run.report.steps.len(),
        run.elements,
        run.report.total_secs(),
        run.events.len()
    );
    match pmoctree_obsv::inclusive_totals(&run.events) {
        Ok(rows) => {
            s.push_str("span                  | total (ms) |  count\n");
            for r in rows.iter().take(16) {
                s.push_str(&format!(
                    "{:<21} | {:>10.3} | {:>6}\n",
                    r.name,
                    r.total_ns as f64 * 1e-6,
                    r.count
                ));
            }
        }
        Err(e) => s.push_str(&format!("span journal invalid: {e}\n")),
    }
    if let Ok((parent, children)) = pmoctree_obsv::coverage(&run.events, "persist") {
        let pct = if parent > 0 { 100.0 * children as f64 / parent as f64 } else { 100.0 };
        s.push_str(&format!(
            "persist coverage: {:.3} ms in persist children of {:.3} ms total ({pct:.2}%)\n",
            children as f64 * 1e-6,
            parent as f64 * 1e-6,
        ));
    }
    if let Ok(steps) = pmoctree_obsv::step_table(&run.events) {
        s.push_str("step |  total (ms) |  refine | balance |   solve | persist\n");
        for st in &steps {
            let get = |n: &str| {
                st.phases.iter().find(|(p, _)| *p == n).map_or(0.0, |(_, ns)| *ns as f64 * 1e-6)
            };
            s.push_str(&format!(
                "{:>4} | {:>11.3} | {:>7.3} | {:>7.3} | {:>7.3} | {:>7.3}\n",
                st.step,
                st.total_ns as f64 * 1e-6,
                get("step::refine"),
                get("step::balance"),
                get("step::solve"),
                get("step::persist"),
            ));
        }
    }
    s
}

/// Render a trace-check verdict.
pub fn trace_check_str(path: &str, s: &crate::trace_check::TraceSummary) -> String {
    format!(
        "{path}: valid Chrome trace — {} events, {} threads, {} complete spans, {} counters\n",
        s.events, s.threads, s.spans, s.counters
    )
}

/// Render the whole-application restart experiment.
pub fn recovery_rt_str(r: &crate::recovery_rt::RecoveryRt) -> String {
    let mut s = format!(
        "Whole-application restart (pm-rt): {} steps, {} elements, {} crash opportunities\n",
        r.steps, r.elements, r.opportunities
    );
    s.push_str("crash at    | label            | resumed at | identical report\n");
    for row in &r.rows {
        s.push_str(&format!(
            "{:>11} | {:<16} | {:<10} | {}\n",
            row.opportunity,
            row.label.as_deref().unwrap_or("-"),
            row.resumed_at.map_or("scratch".to_string(), |at| format!("step {at}")),
            if row.identical { "yes" } else { "NO" },
        ));
    }
    s.push_str(&format!(
        "restart latency (virtual s): pm-rt reattach {:.6} vs file checkpoint {:.6} \
         (read + rebuild + {} replayed steps) => {:.1}x\n",
        r.pm_restart_secs,
        r.baseline_restart_secs,
        r.baseline_lost_steps,
        r.speedup()
    ));
    s
}

/// Render the multi-tenant service crash sweep.
pub fn service_sweep_str(sweep: &crate::crash_sweep::ServiceSweep) -> String {
    let mut s = format!(
        "Service crash sweep: {} opportunities x {} modes over {} batches ({} tenants)\n",
        sweep.opportunities,
        sweep.rows.len(),
        sweep.batches,
        sweep.tenants
    );
    s.push_str("mode                          |  checked | V_i-1 | V_i | violations\n");
    for r in &sweep.rows {
        s.push_str(&format!(
            "{:<29} | {:>8} | {:>5} | {:>3} | {:>10}\n",
            r.mode, r.checked, r.recovered_committed, r.recovered_in_flight, r.violations
        ));
    }
    s.push_str("failpoint coverage: ");
    let cov: Vec<String> = sweep.label_counts.iter().map(|(l, n)| format!("{l} x{n}")).collect();
    s.push_str(&cov.join(", "));
    s.push('\n');
    for v in &sweep.violations {
        s.push_str(&format!(
            "VIOLATION at opportunity {} ({}) under {}: {}\n",
            v.opportunity,
            v.label.unwrap_or("unlabelled"),
            v.mode,
            v.reason
        ));
    }
    s.push_str(&format!(
        "flight recorder: {} recovered dumps validated against the injected crash points\n",
        sweep.recorder_checked
    ));
    if sweep.total_violations() == 0 {
        s.push_str("every crash recovers a batch all-or-nothing for every tenant\n");
    }
    s
}

/// Render the multi-tenant service benchmark.
pub fn service_str(b: &crate::service_bench::ServiceBench) -> String {
    let mut s = format!(
        "Multi-tenant service: {} tenants, Zipf s={:.2} (hottest tenant took {:.1}% of ops)\n",
        b.tenants,
        b.zipf_s,
        100.0 * b.hot_tenant_share
    );
    s.push_str(&format!(
        "{} ops in {:.4} virtual s => {:.0} ops/s; latency p50 {} ns, p99 {} ns\n",
        b.ops, b.total_virtual_secs, b.ops_per_virtual_sec, b.p50_ns, b.p99_ns
    ));
    s.push_str(&format!(
        "batch-flush (root swap) latency: p50 {} ns, p99 {} ns\n",
        b.commit_p50_ns, b.commit_p99_ns
    ));
    s.push_str(&format!(
        "{} root swaps, {} bytes written => {:.0} bytes/commit; {} quota rejections\n",
        b.commits, b.bytes_written, b.bytes_per_commit, b.quota_rejections
    ));
    s.push_str(&format!(
        "snapshot isolation: {} pinned rereads, {}\n",
        b.snapshot_checks,
        if b.snapshot_ok { "all byte-identical" } else { "VIOLATED" }
    ));
    s.push_str(&format!("per-tenant telemetry: {} labelled series\n", b.labeled_series));
    s.push_str(&wear_str(&b.wear));
    s
}

/// Render the wear-leveling benchmark: both endurance readouts against
/// their recorded pre-log baselines, plus the wear GC's counters.
pub fn wear_level_str(b: &crate::wear_bench::WearLevelBench) -> String {
    let mut s = format!(
        "Wear leveling: service {} commits, {} bytes => {:.0} bytes/commit \
         (baseline {:.0}, {:.1}% reduction)\n",
        b.service_commits,
        b.service_bytes_written,
        b.service_bytes_per_commit,
        b.baseline_bytes_per_commit,
        b.bytes_per_commit_reduction_percent
    );
    s.push_str(&format!(
        "droplet flatness (hottest/mean block wear): {:.3} (baseline {:.2}); \
         {} steps, {} elements\n",
        b.droplet_flatness, b.baseline_flatness, b.droplet_steps, b.droplet_elements
    ));
    s.push_str(&format!(
        "wear GC: watermark {:.2}, {} relocations, {} bytes moved; snapshots {}\n",
        b.leveling.occupancy_watermark,
        b.leveling.relocations,
        b.leveling.bytes_moved,
        if b.service_snapshot_ok { "byte-identical under relocation" } else { "VIOLATED" }
    ));
    s.push_str(&wear_str(&b.wear));
    s
}

/// Render a wear / write-amplification report: per-region and per-phase
/// committed bytes plus the block-wear histogram.
pub fn wear_str(w: &pmoctree_nvbm::WearReport) -> String {
    let mut s = format!(
        "wear: {} bytes committed over {} blocks (mean {:.1} commits/block, \
         hottest block {} commits at offset {:#x})\n",
        w.bytes_committed, w.blocks_touched, w.mean_wear, w.max_wear, w.max_wear_offset
    );
    let row = |items: &[pmoctree_nvbm::NamedBytes]| {
        items.iter().map(|r| format!("{} {}", r.name, r.bytes)).collect::<Vec<_>>().join(", ")
    };
    s.push_str(&format!("  bytes by region: {}\n", row(&w.bytes_by_region)));
    s.push_str(&format!("  bytes by phase:  {}\n", row(&w.bytes_by_phase)));
    let hist: Vec<String> = w
        .wear_hist
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| format!("2^{i}:{n}"))
        .collect();
    s.push_str(&format!("  wear histogram (log2 buckets): {}\n", hist.join(" ")));
    s
}

/// Render the blackbox (flight recorder) run: the recovered ring and the
/// recorder's measured overhead.
pub fn blackbox_str(b: &crate::experiments::BlackboxRun) -> String {
    let mut s = format!(
        "Blackbox: droplet run, {} steps, {} elements; recovered flight recorder holds \
         {} entries ({} slots, {} dropped, {} truncated)\n",
        b.steps,
        b.elements,
        b.dump.entries.len(),
        b.dump.slots,
        b.dump.dropped_slots,
        b.dump.truncated
    );
    s.push_str("   seq |        t_ns | kind       | label                      | arg\n");
    for e in b.dump.entries.iter().rev().take(20).rev() {
        s.push_str(&format!(
            "{:>6} | {:>11} | {:<10} | {:<26} | {}\n",
            e.seq,
            e.t_ns,
            e.kind.as_str(),
            e.label,
            e.arg
        ));
    }
    if b.dump.entries.len() > 20 {
        s.push_str(&format!("   ... ({} older entries not shown)\n", b.dump.entries.len() - 20));
    }
    s.push_str(&format!(
        "recorder overhead: {:.4} virtual s on vs {:.4} off => {:.2}% inflation (bound: 5%)\n",
        b.overhead.on_secs,
        b.overhead.off_secs,
        b.overhead.inflation_percent()
    ));
    s.push_str(&wear_str(&b.wear));
    s
}

/// Render the crash-point sweep outcome.
pub fn crash_sweep_str(sweep: &crate::crash_sweep::CrashSweep) -> String {
    let mut s = format!(
        "Crash-point sweep: {} opportunities ({} interleaving) x {} modes over {} steps \
         ({} final elements)\n",
        sweep.opportunities,
        sweep.interleavings,
        sweep.rows.len(),
        sweep.steps,
        sweep.elements
    );
    s.push_str("mode                          |  checked | V_i-1 | V_i | violations\n");
    for r in &sweep.rows {
        s.push_str(&format!(
            "{:<29} | {:>8} | {:>5} | {:>3} | {:>10}\n",
            r.mode, r.checked, r.recovered_committed, r.recovered_in_flight, r.violations
        ));
    }
    s.push_str("failpoint coverage: ");
    let cov: Vec<String> = sweep.label_counts.iter().map(|(l, n)| format!("{l} x{n}")).collect();
    s.push_str(&cov.join(", "));
    s.push('\n');
    for v in &sweep.violations {
        s.push_str(&format!(
            "VIOLATION at opportunity {} ({}) under {}: {}\n",
            v.opportunity,
            v.label.unwrap_or("unlabelled"),
            v.mode,
            v.reason
        ));
    }
    s.push_str(&format!(
        "flight recorder: {} recovered dumps validated against the injected crash points\n",
        sweep.recorder_checked
    ));
    if sweep.total_violations() == 0 {
        s.push_str("every crash recovers to exactly V_i or V_i-1 with invariants intact\n");
    }
    s
}
