//! Wall-clock microbenchmark of the batched Morton kernels.
//!
//! Every kernel with a `_with` dispatch override is timed twice over the
//! same key set — once pinned to the scalar fallback, once on whatever
//! [`Dispatch::hardware`] reports — so `BENCH_morton.json` records whether
//! the SIMD path actually wins on the machine that produced it. On a CPU
//! without BMI2+AVX2 both columns run the scalar kernel and the speedup
//! column reads ~1.0, which is itself the interesting datum.
//!
//! Unlike every other experiment in this crate the numbers here are real
//! nanoseconds, not virtual-clock ticks, so the JSON is machine-dependent
//! and deliberately excluded from the determinism gates.

use pmoctree_morton::simd::{self, Dispatch};
use pmoctree_morton::OctKey;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One kernel's scalar-vs-hardware comparison.
#[derive(Clone, Serialize)]
pub struct MortonRow {
    /// Kernel name (`encode`, `decode`, `anchors`, `cmp`).
    pub kernel: &'static str,
    /// Best-of-iters nanoseconds per key, scalar fallback pinned.
    pub scalar_ns_per_key: f64,
    /// Best-of-iters nanoseconds per key, hardware dispatch.
    pub simd_ns_per_key: f64,
    /// `scalar / simd`; > 1.0 means the hardware path is faster.
    pub speedup: f64,
}

/// Full result of the Morton kernel microbenchmark.
#[derive(Serialize)]
pub struct MortonBench {
    /// What [`Dispatch::hardware`] resolved to on this machine.
    pub dispatch: String,
    /// Number of keys per kernel invocation.
    pub keys: usize,
    /// Timed repetitions per kernel (the minimum is reported).
    pub iters: u32,
    /// One comparison row per kernel.
    pub rows: Vec<MortonRow>,
}

/// splitmix64 — a fixed-seed generator so every run benches the same keys.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Random octree keys spread over all levels, biased toward deep levels
/// (uniform level choice) so the encode/decode masks see full-width codes.
fn sample_keys(n: usize) -> Vec<OctKey> {
    let mut s = 0u64;
    (0..n)
        .map(|_| {
            let level = 1 + (next(&mut s) % OctKey::MAX_LEVEL as u64) as u8;
            let mask = (1u64 << level) - 1;
            let coords = [next(&mut s) & mask, next(&mut s) & mask, next(&mut s) & mask];
            OctKey::from_coords(coords, level)
        })
        .collect()
}

/// Best-of-`iters` nanoseconds per key for one kernel invocation. Minimum
/// (not mean) so scheduler noise cannot manufacture a fake SIMD win or loss.
fn time_per_key<F: FnMut()>(iters: u32, keys: usize, mut f: F) -> f64 {
    f(); // warm-up: fault in pages, settle the dispatch cache
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best / keys as f64
}

/// Run the scalar-vs-SIMD comparison over `n_keys` keys, `iters` timed
/// repetitions per kernel.
pub fn morton_bench(n_keys: usize, iters: u32) -> MortonBench {
    let keys = sample_keys(n_keys);
    let items: Vec<([u64; 3], u8)> = keys.iter().map(|k| (k.coords(), k.level())).collect();
    // Compare against a reversed copy so cmp sees both orderings.
    let rev: Vec<OctKey> = keys.iter().rev().copied().collect();
    let hw = Dispatch::hardware();

    let mut rows = Vec::new();
    let mut push = |kernel: &'static str, scalar: f64, hwns: f64| {
        rows.push(MortonRow {
            kernel,
            scalar_ns_per_key: scalar,
            simd_ns_per_key: hwns,
            speedup: scalar / hwns,
        });
    };

    let encode = |d: Dispatch| {
        time_per_key(iters, n_keys, || {
            black_box(simd::encode_many_with(d, black_box(&items))).clear()
        })
    };
    push("encode", encode(Dispatch::Scalar), encode(hw));

    let decode = |d: Dispatch| {
        time_per_key(iters, n_keys, || {
            black_box(simd::decode_many_with(d, black_box(&keys))).clear()
        })
    };
    push("decode", decode(Dispatch::Scalar), decode(hw));

    let anchors = |d: Dispatch| {
        time_per_key(iters, n_keys, || {
            black_box(simd::anchors_many_with(d, black_box(&keys))).clear()
        })
    };
    push("anchors", anchors(Dispatch::Scalar), anchors(hw));

    let cmp = |d: Dispatch| {
        time_per_key(iters, n_keys, || {
            black_box(simd::cmp_keys_many_with(d, black_box(&keys), black_box(&rev))).clear()
        })
    };
    push("cmp", cmp(Dispatch::Scalar), cmp(hw));

    MortonBench { dispatch: format!("{:?}", hw), keys: n_keys, iters, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_all_kernels_with_positive_times() {
        let b = morton_bench(512, 2);
        let names: Vec<_> = b.rows.iter().map(|r| r.kernel).collect();
        assert_eq!(names, ["encode", "decode", "anchors", "cmp"]);
        for r in &b.rows {
            assert!(
                r.scalar_ns_per_key > 0.0 && r.simd_ns_per_key > 0.0,
                "{} timed at zero",
                r.kernel
            );
            assert!(r.speedup.is_finite());
        }
    }

    #[test]
    fn sample_keys_are_deterministic() {
        assert_eq!(sample_keys(64), sample_keys(64));
    }
}
