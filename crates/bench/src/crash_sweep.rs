//! Deterministic crash-point sweep (the recovery-verification harness).
//!
//! Drives an N-step moving-droplet adaptation workload on a PM-octree
//! with a [`FailPlan`] hook installed, so **every** crash opportunity the
//! workload has — every store, every cacheline writeback, every labelled
//! protocol point (`persist::*`, `gc::sweep`, `c0::evict`,
//! `replica::ship`, `transform`, `rt::commit`, `rt::swizzle`) — is
//! visited exactly once. At each
//! opportunity the hook materialises the media image a reboot would find
//! under each [`CrashMode`] (drop dirty lines, commit a random subset,
//! tear each line at a random word boundary), restores a fresh tree from
//! it, runs the full invariant checker, and compares the recovered leaf
//! set against the version oracle: it must be *exactly* the last
//! committed version `V_{i-1}`, or — for opportunities inside `persist`
//! after the root publication — the in-flight version `V_i`. Never a
//! mixture, never a panic.
//!
//! A single workload pass therefore proves the crash-consistency
//! contract for every (opportunity × mode) pair, instead of `O(n)`
//! record/replay reruns.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use pm_octree::{check_invariants, CellData, PmConfig, PmOctree};
use pm_rt::PmRt;
use pmoctree_morton::OctKey;
use pmoctree_nvbm::{CrashMode, DeviceModel, FailPlan, NvbmArena};

/// Name of the pm-rt root the sweep workload commits each step.
const RT_ROOT_NAME: &str = "sweep::step";

/// One persisted (or in-flight) version: the sorted leaf set.
type Snapshot = Vec<(OctKey, CellData)>;

/// Sweep scale knobs.
#[derive(Clone, Debug)]
pub struct CrashSweepConfig {
    /// Adaptation steps (each ends in a persist).
    pub steps: usize,
    /// Maximum refinement level of the droplet band.
    pub max_level: u8,
    /// Emulated device size in bytes (small keeps image copies cheap).
    pub arena_bytes: usize,
    /// Seeds for the randomised crash modes; each seed adds a
    /// `CommitRandom` and a `TornWrite` column to the matrix.
    pub seeds: Vec<u64>,
    /// Commit probability for `CommitRandom`.
    pub p_commit: f64,
}

impl CrashSweepConfig {
    /// CI-sized sweep: a couple of steps on a coarse mesh.
    pub fn smoke() -> Self {
        CrashSweepConfig {
            steps: 2,
            max_level: 3,
            arena_bytes: 1 << 20,
            seeds: vec![7],
            p_commit: 0.5,
        }
    }

    /// Default sweep: a few steps, three seeds per randomised mode.
    pub fn full() -> Self {
        CrashSweepConfig {
            steps: 4,
            max_level: 4,
            arena_bytes: 2 << 20,
            seeds: vec![1, 2, 3],
            p_commit: 0.5,
        }
    }
}

/// Per-crash-mode outcome over all opportunities.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CrashModeRow {
    /// Human-readable mode name (e.g. `torn_write[seed=3]`).
    pub mode: String,
    /// Opportunities checked under this mode.
    pub checked: u64,
    /// Recoveries that yielded the last committed version.
    pub recovered_committed: u64,
    /// Recoveries that yielded the in-flight (just-published) version.
    pub recovered_in_flight: u64,
    /// Contract violations (restore error, invariant failure, or a leaf
    /// set that matches neither valid version).
    pub violations: u64,
}

/// A contract violation, kept for the report (first few only).
#[derive(Clone, Debug)]
pub struct Violation {
    /// Opportunity index the crash was injected at.
    pub opportunity: u64,
    /// Failpoint label, when the opportunity was a labelled one.
    pub label: Option<&'static str>,
    /// Mode name.
    pub mode: String,
    /// What went wrong.
    pub reason: String,
}

/// Full sweep outcome.
#[derive(Clone, Debug)]
pub struct CrashSweep {
    /// Total crash opportunities the workload had.
    pub opportunities: u64,
    /// Occurrence count per failpoint label (protocol coverage).
    pub label_counts: Vec<(String, u64)>,
    /// One row per crash mode.
    pub rows: Vec<CrashModeRow>,
    /// First violations encountered (empty on a clean sweep).
    pub violations: Vec<Violation>,
    /// Leaf count of the final persisted version.
    pub elements: usize,
    /// Steps executed.
    pub steps: usize,
}

impl CrashSweep {
    /// Total violations across all modes.
    pub fn total_violations(&self) -> u64 {
        self.rows.iter().map(|r| r.violations).sum()
    }
}

/// Oracle shared between the workload (which appends versions) and the
/// hook (which checks recoveries against them).
struct Oracle {
    /// Versions a crash right now may legally recover to. Index 0 is the
    /// last committed version; index 1 (present only while a persist is
    /// executing) is the in-flight version being published.
    valid: Vec<Snapshot>,
    /// Legal values of the pm-rt `sweep::step` root, same indexing. The
    /// rt table commits *after* the tree root swap inside the combined
    /// persist, so recovering the new rt value together with the old
    /// tree version is a protocol-ordering violation.
    rt_valid: Vec<u64>,
}

struct SweepStats {
    rows: Vec<CrashModeRow>,
    violations: Vec<Violation>,
}

const MAX_RECORDED_VIOLATIONS: usize = 16;

/// pm-rt side of the recovery oracle: the registry must swizzle, hold a
/// legal `sweep::step` value, and respect the combined-commit ordering —
/// the rt table publishes *after* the tree root swap, so the in-flight
/// rt value together with the old tree version can never be observed.
fn check_rt(r: &mut PmOctree, rt_valid: &[u64], tree_version: usize) -> Result<(), String> {
    let mut rt =
        PmRt::restore(&mut r.store.arena).map_err(|e| format!("rt restore failed: {e}"))?;
    let v: u64 = rt
        .get(&mut r.store.arena, RT_ROOT_NAME)
        .map_err(|e| format!("rt read failed: {e}"))?
        .ok_or_else(|| format!("rt root {RT_ROOT_NAME:?} missing after recovery"))?;
    match rt_valid.iter().position(|&x| x == v) {
        None => Err(format!("rt value {v} is neither the committed nor the in-flight one")),
        Some(1) if tree_version == 0 => {
            Err(format!("rt published in-flight value {v} before the tree root swap"))
        }
        Some(_) => Ok(()),
    }
}

fn signed_distance(k: OctKey, center: [f64; 3], radius: f64) -> f64 {
    let c = k.center();
    let d2: f64 = (0..3).map(|i| (c[i] - center[i]).powi(2)).sum();
    d2.sqrt() - radius
}

/// Run the sweep. Every opportunity of the workload is checked under
/// every mode; a correct implementation returns
/// [`CrashSweep::total_violations`] `== 0`.
pub fn crash_sweep(cfg: &CrashSweepConfig) -> CrashSweep {
    let mut modes: Vec<(String, CrashMode)> = vec![("lose_dirty".into(), CrashMode::LoseDirty)];
    for &seed in &cfg.seeds {
        modes.push((
            format!("commit_random[p={},seed={seed}]", cfg.p_commit),
            CrashMode::CommitRandom { p: cfg.p_commit, seed },
        ));
        modes
            .push((format!("torn_write[seed={seed}]", seed = seed), CrashMode::TornWrite { seed }));
    }

    // Exercise the whole protocol surface: replica shipping, C0
    // eviction pressure, and the dynamic transformation all on.
    let pm_cfg = PmConfig::builder()
        .c0_capacity_octants(96)
        .dynamic_transform(true)
        .replicas(true)
        .build()
        .expect("valid sweep config");

    let arena = NvbmArena::new(cfg.arena_bytes, DeviceModel::default());
    let mut t = PmOctree::create(arena, pm_cfg);
    t.add_feature(Box::new(|_k, d| d.phi.abs() < 0.25));

    // Base mesh, committed before the plan is installed: the sweep
    // starts from a device that holds a recoverable V_0.
    t.refine(OctKey::root()).expect("refine root");
    for i in 0..8 {
        t.refine(OctKey::root().child(i)).expect("refine base");
    }
    t.persist();
    let v0 = t.leaves_sorted();

    // An rt registry on the same device, committed before the plan is
    // installed so the sweep starts from a recoverable rt V_0 as well.
    let mut rt = PmRt::create(&mut t.store.arena).expect("rt create");
    rt.put(&mut t.store.arena, RT_ROOT_NAME, &0u64).expect("rt put");
    rt.commit(&mut t.store.arena).expect("rt commit");

    let oracle = Arc::new(Mutex::new(Oracle { valid: vec![v0], rt_valid: vec![0] }));
    let stats = Arc::new(Mutex::new(SweepStats {
        rows: modes
            .iter()
            .map(|(name, _)| CrashModeRow {
                mode: name.clone(),
                checked: 0,
                recovered_committed: 0,
                recovered_in_flight: 0,
                violations: 0,
            })
            .collect(),
        violations: Vec::new(),
    }));

    let hook_oracle = oracle.clone();
    let hook_stats = stats.clone();
    let hook_modes = modes.clone();
    t.store.arena.set_fail_plan(FailPlan::with_hook(Box::new(move |view| {
        let (valid, rt_valid) = {
            let o = hook_oracle.lock().expect("oracle lock");
            (o.valid.clone(), o.rt_valid.clone())
        };
        let mut st = hook_stats.lock().expect("stats lock");
        for (i, (name, mode)) in hook_modes.iter().enumerate() {
            st.rows[i].checked += 1;
            let image = view.image(*mode);
            let rebooted = NvbmArena::from_media(image, DeviceModel::default());
            let verdict: Result<usize, String> = match PmOctree::restore(rebooted, pm_cfg) {
                Err(e) => Err(format!("restore failed: {e}")),
                Ok(mut r) => match check_invariants(&mut r) {
                    Err(e) => Err(format!("invariants violated: {e}")),
                    Ok(_) => {
                        let got = r.leaves_sorted();
                        match valid.iter().position(|v| *v == got) {
                            Some(i) => check_rt(&mut r, &rt_valid, i).map(|()| i),
                            None => Err(format!(
                                "recovered leaf set ({} leaves) is neither V_i nor V_i-1",
                                got.len()
                            )),
                        }
                    }
                },
            };
            match verdict {
                Ok(0) => st.rows[i].recovered_committed += 1,
                Ok(_) => st.rows[i].recovered_in_flight += 1,
                Err(reason) => {
                    st.rows[i].violations += 1;
                    if st.violations.len() < MAX_RECORDED_VIOLATIONS {
                        st.violations.push(Violation {
                            opportunity: view.opportunity,
                            label: view.label,
                            mode: name.clone(),
                            reason,
                        });
                    }
                }
            }
        }
    })));

    // The droplet sweeps across the domain; every step updates the level
    // set on all leaves, adapts the band, and persists.
    for s in 0..cfg.steps {
        let tt = (s + 1) as f64 / cfg.steps as f64;
        let center = [0.25 + 0.5 * tt, 0.5, 0.5];
        let radius = 0.25;
        for k in t.leaf_keys_sorted() {
            let phi = signed_distance(k, center, radius);
            let _ = t.set_data(k, CellData { phi, pressure: s as f64, ..Default::default() });
        }
        // Refine the interface band; coarsen families that left it.
        for k in t.leaf_keys_sorted() {
            let phi = signed_distance(k, center, radius);
            if phi.abs() < k.extent() && k.level() < cfg.max_level {
                let _ = t.refine(k);
            }
        }
        for k in t.leaf_keys_sorted() {
            if let Some(p) = k.parent() {
                if p.level() >= 1 && signed_distance(p, center, radius).abs() > 4.0 * p.extent() {
                    let _ = t.coarsen(p);
                }
            }
        }
        // Persist under the oracle: while persist runs, a crash may
        // legally land on either the committed or the in-flight version.
        // The rt registry commits inside the same persist (combined
        // protocol), so its legal values widen and narrow in lockstep.
        let new = t.leaves_sorted();
        let step_val = (s + 1) as u64;
        {
            let mut o = oracle.lock().expect("oracle lock");
            let committed = o.valid[0].clone();
            o.valid = vec![committed, new.clone()];
            let rt_committed = o.rt_valid[0];
            o.rt_valid = vec![rt_committed, step_val];
        }
        let rt_ref = &mut rt;
        t.persist_with_hook(&mut |arena| {
            rt_ref
                .put(arena, RT_ROOT_NAME, &step_val)
                .and_then(|_| rt_ref.commit(arena))
                .map_err(|e| pm_octree::PmError::Recovery(format!("rt: {e}")))
        })
        .expect("combined rt commit failed");
        {
            let mut o = oracle.lock().expect("oracle lock");
            o.valid = vec![new];
            o.rt_valid = vec![step_val];
        }
    }

    // Reattach the registry on the live device with the plan still
    // installed: the swizzle pass is itself a crash surface, so its
    // failpoint must appear in the sweep's opportunity space.
    let reread = PmRt::restore(&mut t.store.arena).expect("rt reattach");
    assert_eq!(reread.epoch(), rt.epoch(), "reattached rt must see every commit");

    let plan = t.store.arena.take_fail_plan().expect("plan installed");
    let opportunities = plan.opportunities();
    let mut label_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (_, l) in plan.labels() {
        *label_counts.entry(l).or_insert(0) += 1;
    }
    drop(plan); // releases the hook's clones of the shared state
    let st = Arc::try_unwrap(stats).map_err(|_| "stats still shared").expect("hook dropped");
    let st = st.into_inner().expect("stats lock");
    CrashSweep {
        opportunities,
        label_counts: label_counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        rows: st.rows,
        violations: st.violations,
        elements: t.leaf_count(),
        steps: cfg.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean_and_covers_the_protocol() {
        let sweep = crash_sweep(&CrashSweepConfig::smoke());
        assert!(sweep.opportunities > 100, "workload too small: {}", sweep.opportunities);
        assert_eq!(sweep.total_violations(), 0, "violations: {:#?}", sweep.violations);
        for row in &sweep.rows {
            assert_eq!(row.checked, sweep.opportunities, "{}", row.mode);
            assert!(row.recovered_committed > 0, "{}", row.mode);
        }
        // Every protocol failpoint must have fired at least once.
        for label in [
            "persist::merge",
            "persist::flush",
            "persist::root_swap_half",
            "persist::root_swap",
            "gc::sweep",
            "replica::ship",
            "transform",
            "rt::commit",
            "rt::swizzle",
        ] {
            assert!(
                sweep.label_counts.iter().any(|(l, n)| l == label && *n > 0),
                "failpoint {label} never fired; coverage: {:?}",
                sweep.label_counts
            );
        }
    }
}
