//! Deterministic crash-point sweep (the recovery-verification harness).
//!
//! Drives an N-step moving-droplet adaptation workload on a PM-octree
//! with a [`FailPlan`] hook installed, so **every** crash opportunity the
//! workload has — every store, every cacheline writeback, every labelled
//! protocol point (`persist::*`, `gc::sweep`, `c0::evict`,
//! `replica::ship`, `transform`, `rt::commit`, `rt::swizzle`, and the
//! log-structured heap's `heap::append` / `heap::compact` /
//! `wear::relocate`) — is visited exactly once. At each
//! opportunity the hook materialises the media image a reboot would find
//! under each [`CrashMode`] (drop dirty lines, commit a random subset,
//! tear each line at a random word boundary), restores a fresh tree from
//! it, runs the full invariant checker, and compares the recovered leaf
//! set against the version oracle: it must be *exactly* the last
//! committed version `V_{i-1}`, or — for opportunities inside `persist`
//! after the root publication — the in-flight version `V_i`. Never a
//! mixture, never a panic.
//!
//! A single workload pass therefore proves the crash-consistency
//! contract for every (opportunity × mode) pair, instead of `O(n)`
//! record/replay reruns.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use pm_octree::{check_invariants, CellData, PmConfig, PmOctree};
use pm_rt::{PmRt, ServiceCmd, ServiceConfig, StateService};
use pmoctree_morton::OctKey;
use pmoctree_nvbm::recorder::{self, RecorderDump};
use pmoctree_nvbm::{CrashMode, DeviceModel, FailPlan, NvbmArena, RecKind};

/// The pm-rt tenant namespace the sweep workload commits each step.
const RT_TENANT: &str = "sweep";
/// The root (inside [`RT_TENANT`]) holding the step counter.
const RT_ROOT_NAME: &str = "step";

/// One persisted (or in-flight) version: the sorted leaf set.
type Snapshot = Vec<(OctKey, CellData)>;

/// Sweep scale knobs.
#[derive(Clone, Debug)]
pub struct CrashSweepConfig {
    /// Adaptation steps (each ends in a persist).
    pub steps: usize,
    /// Maximum refinement level of the droplet band.
    pub max_level: u8,
    /// Emulated device size in bytes (small keeps image copies cheap).
    pub arena_bytes: usize,
    /// Seeds for the randomised crash modes; each seed adds a
    /// `CommitRandom` and a `TornWrite` column to the matrix.
    pub seeds: Vec<u64>,
    /// Commit probability for `CommitRandom`.
    pub p_commit: f64,
}

impl CrashSweepConfig {
    /// CI-sized sweep: a couple of steps on a coarse mesh.
    pub fn smoke() -> Self {
        CrashSweepConfig {
            steps: 2,
            max_level: 3,
            arena_bytes: 1 << 20,
            seeds: vec![7],
            p_commit: 0.5,
        }
    }

    /// Default sweep: a few steps, three seeds per randomised mode.
    pub fn full() -> Self {
        CrashSweepConfig {
            steps: 4,
            max_level: 4,
            arena_bytes: 2 << 20,
            seeds: vec![1, 2, 3],
            p_commit: 0.5,
        }
    }
}

/// Per-crash-mode outcome over all opportunities.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CrashModeRow {
    /// Human-readable mode name (e.g. `torn_write[seed=3]`).
    pub mode: String,
    /// Opportunities checked under this mode.
    pub checked: u64,
    /// Recoveries that yielded the last committed version.
    pub recovered_committed: u64,
    /// Recoveries that yielded the in-flight (just-published) version.
    pub recovered_in_flight: u64,
    /// Contract violations (restore error, invariant failure, or a leaf
    /// set that matches neither valid version).
    pub violations: u64,
}

/// A contract violation, kept for the report (first few only).
#[derive(Clone, Debug)]
pub struct Violation {
    /// Opportunity index the crash was injected at.
    pub opportunity: u64,
    /// Failpoint label, when the opportunity was a labelled one.
    pub label: Option<&'static str>,
    /// Mode name.
    pub mode: String,
    /// What went wrong.
    pub reason: String,
}

/// Full sweep outcome.
#[derive(Clone, Debug)]
pub struct CrashSweep {
    /// Total crash opportunities the workload had.
    pub opportunities: u64,
    /// Of those, per-thread interleaving opportunities: crash points at
    /// write-domain publication boundaries, where the oracle sees the
    /// base image plus a deterministic prefix of the domain overlays
    /// (one thread-choice schedule per prefix).
    pub interleavings: u64,
    /// Occurrence count per failpoint label (protocol coverage).
    pub label_counts: Vec<(String, u64)>,
    /// One row per crash mode.
    pub rows: Vec<CrashModeRow>,
    /// First violations encountered (empty on a clean sweep).
    pub violations: Vec<Violation>,
    /// Leaf count of the final persisted version.
    pub elements: usize,
    /// Steps executed.
    pub steps: usize,
    /// Recovered flight-recorder dumps validated (one per opportunity ×
    /// mode; failures count as violations in their mode's row).
    pub recorder_checked: u64,
}

impl CrashSweep {
    /// Total violations across all modes.
    pub fn total_violations(&self) -> u64 {
        self.rows.iter().map(|r| r.violations).sum()
    }
}

/// Oracle shared between the workload (which appends versions) and the
/// hook (which checks recoveries against them).
struct Oracle {
    /// Versions a crash right now may legally recover to. Index 0 is the
    /// last committed version; index 1 (present only while a persist is
    /// executing) is the in-flight version being published.
    valid: Vec<Snapshot>,
    /// Legal values of the pm-rt `sweep::step` root, same indexing. The
    /// rt table commits *after* the tree root swap inside the combined
    /// persist, so recovering the new rt value together with the old
    /// tree version is a protocol-ordering violation.
    rt_valid: Vec<u64>,
}

struct SweepStats {
    rows: Vec<CrashModeRow>,
    violations: Vec<Violation>,
    recorder_checked: u64,
}

const MAX_RECORDED_VIOLATIONS: usize = 16;

/// Flight-recorder side of the recovery oracle, shared by both sweeps.
/// The recorder recovered from a crash image must be well-formed: the
/// ring descriptor decodes, the surviving entries are seq-contiguous
/// (torn tail truncated — [`recorder::recover`] never panics), and no
/// entry is newer than what a *clean* shutdown at the same opportunity
/// would have preserved. At a labelled failpoint the newest durable
/// entry must be that failpoint itself: the entry is written and flushed
/// immediately before the opportunity fires, so every crash image
/// already carries it.
fn check_recorder(
    image: &[u8],
    full: &RecorderDump,
    label: Option<&'static str>,
) -> Result<(), String> {
    let dump = recorder::recover(image);
    if !dump.header_ok {
        return Err("recorder: ring descriptor unreadable after crash".into());
    }
    for w in dump.entries.windows(2) {
        if w[1].seq != w[0].seq + 1 {
            return Err(format!(
                "recorder: recovered entries not seq-contiguous ({} then {})",
                w[0].seq, w[1].seq
            ));
        }
    }
    let crash_last = dump.last().map_or(0, |e| e.seq);
    let full_last = full.last().map_or(0, |e| e.seq);
    if crash_last > full_last {
        return Err(format!(
            "recorder: crashed dump ends at seq {crash_last}, past the injected crash point \
             (clean shutdown ends at {full_last})"
        ));
    }
    if let Some(l) = label {
        match dump.last() {
            Some(e) if e.kind == RecKind::Failpoint && e.label == l => {}
            other => {
                return Err(format!(
                    "recorder: at failpoint {l:?} the newest durable entry is {other:?}"
                ))
            }
        }
    }
    Ok(())
}

/// pm-rt side of the recovery oracle: the registry must swizzle, hold a
/// legal `sweep::step` value, and respect the combined-commit ordering —
/// the rt table publishes *after* the tree root swap, so the in-flight
/// rt value together with the old tree version can never be observed.
fn check_rt(r: &mut PmOctree, rt_valid: &[u64], tree_version: usize) -> Result<(), String> {
    let mut rt =
        PmRt::restore(&mut r.store.arena).map_err(|e| format!("rt restore failed: {e}"))?;
    let v: u64 = rt
        .session(&mut r.store.arena)
        .tenant(RT_TENANT)
        .map_err(|e| format!("rt tenant failed: {e}"))?
        .get(RT_ROOT_NAME)
        .map_err(|e| format!("rt read failed: {e}"))?
        .ok_or_else(|| format!("rt root {RT_ROOT_NAME:?} missing after recovery"))?;
    match rt_valid.iter().position(|&x| x == v) {
        None => Err(format!("rt value {v} is neither the committed nor the in-flight one")),
        Some(1) if tree_version == 0 => {
            Err(format!("rt published in-flight value {v} before the tree root swap"))
        }
        Some(_) => Ok(()),
    }
}

/// The crash-mode columns a sweep config expands to: `LoseDirty`, plus a
/// `CommitRandom` and a `TornWrite` column per seed.
fn mode_matrix(cfg: &CrashSweepConfig) -> Vec<(String, CrashMode)> {
    let mut modes: Vec<(String, CrashMode)> = vec![("lose_dirty".into(), CrashMode::LoseDirty)];
    for &seed in &cfg.seeds {
        modes.push((
            format!("commit_random[p={},seed={seed}]", cfg.p_commit),
            CrashMode::CommitRandom { p: cfg.p_commit, seed },
        ));
        modes
            .push((format!("torn_write[seed={seed}]", seed = seed), CrashMode::TornWrite { seed }));
    }
    modes
}

fn signed_distance(k: OctKey, center: [f64; 3], radius: f64) -> f64 {
    let c = k.center();
    let d2: f64 = (0..3).map(|i| (c[i] - center[i]).powi(2)).sum();
    d2.sqrt() - radius
}

/// Run the sweep. Every opportunity of the workload is checked under
/// every mode; a correct implementation returns
/// [`CrashSweep::total_violations`] `== 0`.
pub fn crash_sweep(cfg: &CrashSweepConfig) -> CrashSweep {
    let modes = mode_matrix(cfg);

    // Exercise the whole protocol surface: replica shipping, C0
    // eviction pressure, and the dynamic transformation all on.
    let pm_cfg = PmConfig::builder()
        .c0_capacity_octants(96)
        .dynamic_transform(true)
        .replicas(true)
        .build()
        .expect("valid sweep config");

    let arena = NvbmArena::new(cfg.arena_bytes, DeviceModel::default());
    let mut t = PmOctree::create(arena, pm_cfg);
    t.add_feature(Box::new(|_k, d| d.phi.abs() < 0.25));

    // Base mesh, committed before the plan is installed: the sweep
    // starts from a device that holds a recoverable V_0.
    t.refine(OctKey::root()).expect("refine root");
    for i in 0..8 {
        t.refine(OctKey::root().child(i)).expect("refine base");
    }
    t.persist();
    let v0 = t.leaves_sorted();

    // An rt registry on the same device, committed before the plan is
    // installed so the sweep starts from a recoverable rt V_0 as well.
    let mut rt = PmRt::create(&mut t.store.arena).expect("rt create");
    {
        let mut h = rt.session(&mut t.store.arena).tenant(RT_TENANT).expect("rt tenant");
        h.put(RT_ROOT_NAME, &0u64).expect("rt put");
        h.commit().expect("rt commit");
    }

    let oracle = Arc::new(Mutex::new(Oracle { valid: vec![v0], rt_valid: vec![0] }));
    let stats = Arc::new(Mutex::new(SweepStats {
        rows: modes
            .iter()
            .map(|(name, _)| CrashModeRow {
                mode: name.clone(),
                checked: 0,
                recovered_committed: 0,
                recovered_in_flight: 0,
                violations: 0,
            })
            .collect(),
        violations: Vec::new(),
        recorder_checked: 0,
    }));

    let hook_oracle = oracle.clone();
    let hook_stats = stats.clone();
    let hook_modes = modes.clone();
    t.store.arena.set_fail_plan(FailPlan::with_hook(Box::new(move |view| {
        let (valid, rt_valid) = {
            let o = hook_oracle.lock().expect("oracle lock");
            (o.valid.clone(), o.rt_valid.clone())
        };
        // What a clean shutdown at this opportunity would preserve — the
        // upper bound every crashed recorder dump is checked against.
        let full_dump = recorder::recover(&view.full_image());
        let mut st = hook_stats.lock().expect("stats lock");
        for (i, (name, mode)) in hook_modes.iter().enumerate() {
            st.rows[i].checked += 1;
            let image = view.image(*mode);
            st.recorder_checked += 1;
            if let Err(reason) = check_recorder(&image, &full_dump, view.label) {
                st.rows[i].violations += 1;
                if st.violations.len() < MAX_RECORDED_VIOLATIONS {
                    st.violations.push(Violation {
                        opportunity: view.opportunity,
                        label: view.label,
                        mode: name.clone(),
                        reason,
                    });
                }
            }
            let rebooted = NvbmArena::from_media(image, DeviceModel::default());
            let verdict: Result<usize, String> = match PmOctree::restore(rebooted, pm_cfg) {
                Err(e) => Err(format!("restore failed: {e}")),
                Ok(mut r) => match check_invariants(&mut r) {
                    Err(e) => Err(format!("invariants violated: {e}")),
                    Ok(_) => {
                        let got = r.leaves_sorted();
                        match valid.iter().position(|v| *v == got) {
                            Some(i) => check_rt(&mut r, &rt_valid, i).map(|()| i),
                            None => Err(format!(
                                "recovered leaf set ({} leaves) is neither V_i nor V_i-1",
                                got.len()
                            )),
                        }
                    }
                },
            };
            match verdict {
                Ok(0) => st.rows[i].recovered_committed += 1,
                Ok(_) => st.rows[i].recovered_in_flight += 1,
                Err(reason) => {
                    st.rows[i].violations += 1;
                    if st.violations.len() < MAX_RECORDED_VIOLATIONS {
                        st.violations.push(Violation {
                            opportunity: view.opportunity,
                            label: view.label,
                            mode: name.clone(),
                            reason,
                        });
                    }
                }
            }
        }
    })));

    // The droplet sweeps across the domain; every step updates the level
    // set on all leaves, adapts the band, and persists. The sweeps run
    // through the batched (domain-parallel) mutators, so the per-thread
    // interleaving schedules at each domain-publication boundary are part
    // of the opportunity space the oracle checks.
    for s in 0..cfg.steps {
        let tt = (s + 1) as f64 / cfg.steps as f64;
        let center = [0.25 + 0.5 * tt, 0.5, 0.5];
        let radius = 0.25;
        let writes: Vec<(OctKey, CellData)> = t
            .leaf_keys_sorted()
            .into_iter()
            .map(|k| {
                let phi = signed_distance(k, center, radius);
                (k, CellData { phi, pressure: s as f64, ..Default::default() })
            })
            .collect();
        let _ = t.set_data_many(&writes);
        // Refine the interface band; coarsen families that left it.
        let band: Vec<OctKey> = t
            .leaf_keys_sorted()
            .into_iter()
            .filter(|k| {
                signed_distance(*k, center, radius).abs() < k.extent() && k.level() < cfg.max_level
            })
            .collect();
        let _ = t.refine_many(&band);
        let mut parents: Vec<OctKey> = t
            .leaf_keys_sorted()
            .into_iter()
            .filter_map(|k| k.parent())
            .filter(|p| {
                p.level() >= 1 && signed_distance(*p, center, radius).abs() > 4.0 * p.extent()
            })
            .collect();
        parents.sort_unstable();
        parents.dedup();
        let _ = t.coarsen_many(&parents);
        // Persist under the oracle: while persist runs, a crash may
        // legally land on either the committed or the in-flight version.
        // The rt registry commits inside the same persist (combined
        // protocol), so its legal values widen and narrow in lockstep.
        let new = t.leaves_sorted();
        let step_val = (s + 1) as u64;
        {
            let mut o = oracle.lock().expect("oracle lock");
            let committed = o.valid[0].clone();
            o.valid = vec![committed, new.clone()];
            let rt_committed = o.rt_valid[0];
            o.rt_valid = vec![rt_committed, step_val];
        }
        let rt_ref = &mut rt;
        t.persist_with_hook(&mut |arena| {
            let mut h = rt_ref.session(arena).tenant(RT_TENANT)?;
            h.put(RT_ROOT_NAME, &step_val)?;
            h.commit()
        })
        .expect("combined rt commit failed");
        {
            let mut o = oracle.lock().expect("oracle lock");
            o.valid = vec![new];
            o.rt_valid = vec![step_val];
        }
    }

    // Reattach the registry on the live device with the plan still
    // installed: the swizzle pass is itself a crash surface, so its
    // failpoint must appear in the sweep's opportunity space.
    let reread = PmRt::restore(&mut t.store.arena).expect("rt reattach");
    assert_eq!(reread.epoch(), rt.epoch(), "reattached rt must see every commit");

    let plan = t.store.arena.take_fail_plan().expect("plan installed");
    let opportunities = plan.opportunities();
    let interleavings = plan.interleavings();
    let mut label_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (_, l) in plan.labels() {
        *label_counts.entry(l).or_insert(0) += 1;
    }
    drop(plan); // releases the hook's clones of the shared state
    let st = Arc::try_unwrap(stats).map_err(|_| "stats still shared").expect("hook dropped");
    let st = st.into_inner().expect("stats lock");
    CrashSweep {
        opportunities,
        interleavings,
        label_counts: label_counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        rows: st.rows,
        violations: st.violations,
        elements: t.leaf_count(),
        steps: cfg.steps,
        recorder_checked: st.recorder_checked,
    }
}

/// A decoded multi-tenant service state: tenant → root → raw bytes, as
/// reported by [`StateService::audit`].
type AuditState = BTreeMap<String, BTreeMap<String, Vec<u8>>>;

/// Outcome of the multi-tenant service crash sweep
/// ([`service_crash_sweep`]).
#[derive(Clone, Debug)]
pub struct ServiceSweep {
    /// Total crash opportunities the service workload had.
    pub opportunities: u64,
    /// Occurrence count per failpoint label (protocol coverage).
    pub label_counts: Vec<(String, u64)>,
    /// One row per crash mode.
    pub rows: Vec<CrashModeRow>,
    /// First violations encountered (empty on a clean sweep).
    pub violations: Vec<Violation>,
    /// Batches flushed under the plan.
    pub batches: usize,
    /// Tenants in the service.
    pub tenants: usize,
    /// Recovered flight-recorder dumps validated (one per opportunity ×
    /// mode; failures count as violations in their mode's row).
    pub recorder_checked: u64,
}

impl ServiceSweep {
    /// Total violations across all modes.
    pub fn total_violations(&self) -> u64 {
        self.rows.iter().map(|r| r.violations).sum()
    }
}

/// When a recovered audit state matches neither the committed nor the
/// in-flight batch version, distinguish the two failure shapes: a
/// *mixed-batch* recovery (every tenant individually holds one of the
/// two legal versions, but not all the same one — the batch was torn
/// across tenants) versus outright corruption (some tenant holds a
/// state that was never staged at all).
fn diagnose_service_state(got: &AuditState, valid: &[AuditState]) -> String {
    let tenants: std::collections::BTreeSet<&String> =
        valid.iter().flat_map(|v| v.keys()).chain(got.keys()).collect();
    for t in tenants {
        let g = got.get(t);
        if !valid.iter().any(|v| v.get(t) == g) {
            return format!(
                "tenant {t:?} recovered a state that is neither committed nor in-flight"
            );
        }
    }
    "tenants recovered from mixed batch versions (per-batch atomicity torn across tenants)"
        .to_string()
}

/// Crash-sweep the multi-tenant service front-end: drive batched
/// commands (`Create`/`Put`/`Commit`/`Restore`/`Destroy`, including a
/// quota-rejected write) with a [`FailPlan`] hook installed, and at
/// every crash opportunity audit the rebooted image with
/// [`StateService::audit`]. The recovered state must be *exactly* the
/// pre-batch committed state or the whole in-flight batch — a batch is
/// all-or-nothing for every tenant it touches. Pinned MVCC snapshots
/// are taken under the plan (covering `svc::snapshot_pin`) and must
/// keep reading the pre-batch bytes after the batch lands.
pub fn service_crash_sweep(cfg: &CrashSweepConfig) -> ServiceSweep {
    const TENANTS: usize = 3;
    /// Quota for tenant `t0`: two cacheline-class roots fit, the
    /// oversized write each batch retries does not.
    const T0_QUOTA: u64 = 200;

    let modes = mode_matrix(cfg);
    let mut arena = NvbmArena::new(cfg.arena_bytes, DeviceModel::default());
    let scfg = ServiceConfig::builder()
        .max_tenants(16)
        .default_quota(64 << 10)
        .batch_capacity(256)
        .build()
        .expect("valid service config");
    let mut svc = StateService::create(&mut arena, scfg).expect("service create");

    // Seed the tenant set before the plan is installed, so the sweep
    // starts from a device holding a recoverable V_0.
    for i in 0..TENANTS {
        let quota = if i == 0 { Some(T0_QUOTA) } else { None };
        svc.submit(&mut arena, ServiceCmd::Create { tenant: format!("t{i}"), quota })
            .expect("enqueue create");
    }
    svc.flush_batch(&mut arena).expect("seed batch");
    let v0 = StateService::audit(&mut arena).expect("seed audit");

    let oracle: Arc<Mutex<Vec<AuditState>>> = Arc::new(Mutex::new(vec![v0]));
    let stats = Arc::new(Mutex::new(SweepStats {
        rows: modes
            .iter()
            .map(|(name, _)| CrashModeRow {
                mode: name.clone(),
                checked: 0,
                recovered_committed: 0,
                recovered_in_flight: 0,
                violations: 0,
            })
            .collect(),
        violations: Vec::new(),
        recorder_checked: 0,
    }));

    let hook_oracle = oracle.clone();
    let hook_stats = stats.clone();
    let hook_modes = modes.clone();
    arena.set_fail_plan(FailPlan::with_hook(Box::new(move |view| {
        let valid = hook_oracle.lock().expect("oracle lock").clone();
        // Clean-shutdown recorder dump: the upper bound every crashed
        // dump at this opportunity is checked against.
        let full_dump = recorder::recover(&view.full_image());
        let mut st = hook_stats.lock().expect("stats lock");
        for (i, (name, mode)) in hook_modes.iter().enumerate() {
            st.rows[i].checked += 1;
            let image = view.image(*mode);
            st.recorder_checked += 1;
            if let Err(reason) = check_recorder(&image, &full_dump, view.label) {
                st.rows[i].violations += 1;
                if st.violations.len() < MAX_RECORDED_VIOLATIONS {
                    st.violations.push(Violation {
                        opportunity: view.opportunity,
                        label: view.label,
                        mode: name.clone(),
                        reason,
                    });
                }
            }
            let mut rebooted = NvbmArena::from_media(image, DeviceModel::default());
            let verdict: Result<usize, String> = match StateService::audit(&mut rebooted) {
                Err(e) => Err(format!("service audit failed: {e}")),
                Ok(got) => match valid.iter().position(|v| *v == got) {
                    Some(v) => Ok(v),
                    None => Err(diagnose_service_state(&got, &valid)),
                },
            };
            match verdict {
                Ok(0) => st.rows[i].recovered_committed += 1,
                Ok(_) => st.rows[i].recovered_in_flight += 1,
                Err(reason) => {
                    st.rows[i].violations += 1;
                    if st.violations.len() < MAX_RECORDED_VIOLATIONS {
                        st.violations.push(Violation {
                            opportunity: view.opportunity,
                            label: view.label,
                            mode: name.clone(),
                            reason,
                        });
                    }
                }
            }
        }
    })));

    let batches = cfg.steps.max(2) * 2;
    for b in 0..batches {
        let before = oracle.lock().expect("oracle lock")[0].clone();

        // Build the batch and simulate its expected outcome. Writes go
        // to a hot root (`r0`) and a per-batch root, skewing COW churn.
        let mut cmds: Vec<ServiceCmd> = Vec::new();
        let mut after = before.clone();
        for i in 0..TENANTS {
            let tenant = format!("t{i}");
            let mut bytes = vec![0xABu8; 16];
            bytes[0] = b as u8 + 1;
            bytes[1] = i as u8;
            cmds.push(ServiceCmd::Put {
                tenant: tenant.clone(),
                root: "r0".into(),
                bytes: bytes.clone(),
            });
            after.get_mut(&tenant).expect("tenant exists").insert("r0".into(), bytes);
        }
        // t0's oversized write must be rejected by quota *before*
        // touching media: it never appears in any legal state.
        cmds.push(ServiceCmd::Put {
            tenant: "t0".into(),
            root: "big".into(),
            bytes: vec![0xFF; 256],
        });
        // t1 stages a write and then issues Restore in the same batch:
        // the staged write is reverted, so t1's extra root is absent
        // from the in-flight version too.
        cmds.push(ServiceCmd::Put { tenant: "t1".into(), root: "tmp".into(), bytes: vec![7; 16] });
        cmds.push(ServiceCmd::Restore { tenant: "t1".into() });
        // t1's `r0` write above is also reverted by the Restore.
        after.get_mut("t1").expect("t1 exists").clone_from(before.get("t1").expect("t1 exists"));
        cmds.push(ServiceCmd::Commit { tenant: "t2".into() });
        if b == batches - 1 {
            cmds.push(ServiceCmd::Destroy { tenant: "t2".into() });
            after.remove("t2");
        }

        // While the batch is in flight, a crash may legally land on
        // either the committed or the whole in-flight version.
        *oracle.lock().expect("oracle lock") = vec![before.clone(), after.clone()];

        // Pin a snapshot of t1 under the plan (fires svc::snapshot_pin).
        let snap = svc.snapshot(&mut arena, "t1").expect("snapshot");
        for cmd in cmds {
            svc.submit(&mut arena, cmd).expect("enqueue");
        }
        svc.flush_batch(&mut arena).expect("flush batch");

        // MVCC isolation: the pinned snapshot still reads the pre-batch
        // bytes even though the batch just committed and GC ran.
        let empty = BTreeMap::new();
        let pre = before.get("t1").unwrap_or(&empty);
        for (root, want) in pre {
            let got = snap.get_bytes(&mut arena, root).expect("snapshot read");
            if got.as_ref() != Some(want) {
                let mut st = stats.lock().expect("stats lock");
                st.rows[0].violations += 1;
                if st.violations.len() < MAX_RECORDED_VIOLATIONS {
                    st.violations.push(Violation {
                        opportunity: 0,
                        label: Some("svc::snapshot_pin"),
                        mode: "snapshot_isolation".into(),
                        reason: format!("pinned snapshot of t1/{root} changed after the batch"),
                    });
                }
            }
        }
        drop(snap);
        svc.collect(&mut arena);

        *oracle.lock().expect("oracle lock") = vec![after];
    }

    let plan = arena.take_fail_plan().expect("plan installed");
    let opportunities = plan.opportunities();
    let mut label_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (_, l) in plan.labels() {
        *label_counts.entry(l).or_insert(0) += 1;
    }
    drop(plan);
    let st = Arc::try_unwrap(stats).map_err(|_| "stats still shared").expect("hook dropped");
    let st = st.into_inner().expect("stats lock");
    ServiceSweep {
        opportunities,
        label_counts: label_counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        rows: st.rows,
        violations: st.violations,
        batches,
        tenants: TENANTS,
        recorder_checked: st.recorder_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean_and_covers_the_protocol() {
        let sweep = crash_sweep(&CrashSweepConfig::smoke());
        assert!(sweep.opportunities > 100, "workload too small: {}", sweep.opportunities);
        assert!(
            sweep.interleavings > 0,
            "domain-parallel sweeps must add interleaving crash opportunities"
        );
        assert_eq!(sweep.total_violations(), 0, "violations: {:#?}", sweep.violations);
        for row in &sweep.rows {
            assert_eq!(row.checked, sweep.opportunities, "{}", row.mode);
            assert!(row.recovered_committed > 0, "{}", row.mode);
        }
        // The flight-recorder oracle ran at every opportunity × mode.
        assert_eq!(sweep.recorder_checked, sweep.opportunities * sweep.rows.len() as u64);
        // Every protocol failpoint must have fired at least once.
        for label in [
            "persist::merge",
            "persist::flush",
            "persist::root_swap_half",
            "persist::root_swap",
            "gc::sweep",
            "replica::ship",
            "transform",
            "rt::commit",
            "rt::swizzle",
            "heap::append",
            "heap::compact",
            "wear::relocate",
            "sweep::interleave",
        ] {
            assert!(
                sweep.label_counts.iter().any(|(l, n)| l == label && *n > 0),
                "failpoint {label} never fired; coverage: {:?}",
                sweep.label_counts
            );
        }
    }

    #[test]
    fn service_sweep_is_all_or_nothing_per_tenant() {
        let sweep = service_crash_sweep(&CrashSweepConfig::smoke());
        assert!(sweep.opportunities > 40, "workload too small: {}", sweep.opportunities);
        assert_eq!(sweep.total_violations(), 0, "violations: {:#?}", sweep.violations);
        for row in &sweep.rows {
            assert_eq!(row.checked, sweep.opportunities, "{}", row.mode);
            assert!(row.recovered_committed > 0, "{}", row.mode);
            assert!(row.recovered_in_flight > 0, "{}", row.mode);
        }
        // The flight-recorder oracle ran at every opportunity × mode.
        assert_eq!(sweep.recorder_checked, sweep.opportunities * sweep.rows.len() as u64);
        // The service protocol points must appear in the opportunity
        // space, alongside the underlying rt commit they wrap.
        for label in [
            "svc::commit_batch",
            "svc::snapshot_pin",
            "rt::commit",
            "heap::append",
            "heap::compact",
            "wear::relocate",
        ] {
            assert!(
                sweep.label_counts.iter().any(|(l, n)| l == label && *n > 0),
                "failpoint {label} never fired; coverage: {:?}",
                sweep.label_counts
            );
        }
    }
}
