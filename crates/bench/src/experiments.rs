//! The experiments behind every table and figure in §5 (scaled down per
//! DESIGN.md; shapes, not absolute numbers, are the reproduction target).

use pm_octree::{PmConfig, PmOctree};
use pmoctree_amr::{InCoreBackend, PmBackend};
use pmoctree_cluster::{recovery_comparison, ClusterReport, ClusterSim, RecoveryReport, Scheme};
use pmoctree_nvbm::{DeviceModel, NvbmArena, TraversalStats};
use pmoctree_solver::{RunReport, SimConfig, Simulation};
use serde::Serialize;

/// Map the single-rank driver's `[refine, balance, solve, persist]`
/// component seconds onto the cluster 5-phase layout
/// `[refine, balance, partition, solve, persist]` (partition = 0).
fn five_phase(c: [f64; 4]) -> [f64; 5] {
    [c[0], c[1], 0.0, c[2], c[3]]
}

/// Default per-rank NVBM arena for experiments.
pub const ARENA_BYTES: usize = 48 << 20;

/// Simulation scale for single-rank experiments.
pub fn sim_cfg(steps: usize, max_level: u8) -> SimConfig {
    SimConfig { steps, max_level, base_level: 2, ..SimConfig::default() }
}

// ------------------------------------------------------------- Table 2

/// Table 2: the device model in force (echoed, plus a measured check
/// that one cacheline write really costs `write_ns` on the virtual
/// clock).
pub struct Table2 {
    /// The model.
    pub model: DeviceModel,
    /// Measured ns for one NVBM cacheline write.
    pub measured_write_ns: u64,
    /// Measured ns for one NVBM cacheline read.
    pub measured_read_ns: u64,
}

/// Run the Table 2 check.
pub fn table2() -> Table2 {
    let model = DeviceModel::default();
    let mut a = NvbmArena::new(1 << 16, model);
    let t0 = a.clock.now_ns();
    a.write(0x1000, &[0u8; 64]);
    let w = a.clock.now_ns() - t0;
    let t1 = a.clock.now_ns();
    let mut buf = [0u8; 64];
    a.read(0x1000, &mut buf);
    let r = a.clock.now_ns() - t1;
    Table2 { model, measured_write_ns: w, measured_read_ns: r }
}

// ------------------------------------------------------------- Fig. 3

/// One row of the Figure 3 series.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Time step.
    pub step: usize,
    /// Overlap ratio of `V_{i-1}` and `V_i` at the persist point.
    pub overlap: f64,
    /// Simulated memory usage per 1000 octants (bytes), PM-octree.
    pub mem_per_1000: f64,
    /// Memory a two-full-copy scheme would use per 1000 octants.
    pub two_copies_per_1000: f64,
    /// Elements this step.
    pub elements: usize,
}

/// Figure 3: overlap ratio and memory usage per 1000 octants over a
/// droplet-ejection run (paper: 150 steps, overlap 39–99%, ≤1.98×
/// memory reduction vs keeping two full copies).
pub fn fig3_overlap(steps: usize, max_level: u8) -> Vec<Fig3Row> {
    let sim = Simulation::new(sim_cfg(steps, max_level));
    let mut b = PmBackend::new(PmOctree::create(
        NvbmArena::new(ARENA_BYTES, DeviceModel::default()),
        PmConfig::builder().dynamic_transform(false).build().expect("valid config"),
    ));
    sim.construct(&mut b);
    // Persist the constructed mesh so step 0 measures a real V_{i-1}/V_i
    // overlap (the paper's series starts with an existing version).
    b.tree.persist();
    let mut rows = Vec::with_capacity(steps);
    for s in 0..steps {
        sim.step(&mut b, s);
        let (total, _shared) = b.tree.events.last_overlap.unwrap_or((1, 0));
        let octants = total.max(1);
        // Memory holding both versions at the persist point: the octants
        // kept live (shared + V_i exclusive) plus the previous version's
        // exclusive octants freed by this persist's GC.
        let gc = b.tree.events.last_gc.unwrap_or(pm_octree::GcReport {
            live: octants,
            freed: 0,
            freed_flagged: 0,
        });
        let two_version_bytes = ((gc.live + gc.freed) * 128) as f64;
        rows.push(Fig3Row {
            step: s,
            overlap: b.tree.events.overlap_ratio(),
            mem_per_1000: two_version_bytes / octants as f64 * 1000.0,
            // Two full copies of V_i (what a non-shared multi-version
            // scheme would pay): 2 × octants × 128 B.
            two_copies_per_1000: 2.0 * 128.0 * 1000.0,
            elements: b.tree.leaf_count(),
        });
    }
    rows
}

// ------------------------------------------------- §1 write fraction

/// Write-fraction measurement (§1: 41% average, 72% max during
/// meshing/solve operations).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct WriteFraction {
    /// Average over per-step samples.
    pub avg: f64,
    /// Maximum per-step sample.
    pub max: f64,
    /// Whole-run aggregate (includes read-only verification sweeps).
    pub aggregate: f64,
    /// Octant-location counters over the whole run: how often queries
    /// walked the tree from the root vs. hit the Morton-sorted leaf
    /// index, and what the index rebuilds cost.
    pub trav: pmoctree_nvbm::TraversalStats,
}

/// Measure per-step write fractions of the droplet workload on the
/// in-core tree (pure DRAM, like the paper's original profiling).
pub fn write_fraction(steps: usize, max_level: u8) -> WriteFraction {
    let sim = Simulation::new(sim_cfg(steps, max_level));
    let mut b = InCoreBackend::new();
    let mut fracs = Vec::new();
    // Sample the Construct phase first: refinement-dominated, this is
    // where the write share peaks (the paper's 72% max).
    sim.construct(&mut b);
    {
        let s = &b.tree.stats.dram;
        if s.total_lines() > 0 {
            fracs.push(s.write_fraction());
        }
    }
    for s in 0..steps {
        let r0 = b.tree.stats.dram.read_lines;
        let w0 = b.tree.stats.dram.write_lines;
        // Meshing + solve only (no balance-verification sweep): this is
        // the op mix the paper profiled.
        let t = sim.cfg.t0 + sim.cfg.dt * (s as f64 + 1.0);
        sim.time.set(t);
        let crit = pmoctree_solver::InterfaceCriterion {
            interface: sim.interface,
            time: sim.time.clone(),
            band_cells: sim.cfg.band_cells,
            max_level: sim.cfg.max_level,
        };
        pmoctree_amr::adapt(&mut b, &crit);
        pmoctree_solver::advect(&mut b, &sim.interface, t);
        pmoctree_solver::relax_pressure(&mut b, sim.cfg.relax_iters);
        let dr = b.tree.stats.dram.read_lines - r0;
        let dw = b.tree.stats.dram.write_lines - w0;
        if dr + dw > 0 {
            fracs.push(dw as f64 / (dr + dw) as f64);
        }
    }
    // Whole-run aggregate includes one read-only 2:1 verification sweep
    // (outside the per-step windows above, so avg/max keep the paper's
    // op mix). The sweep runs on the batched neighbor kernel, so the
    // traversal counters show index hits vs root descents side by side.
    assert!(pmoctree_amr::check_balance(&mut b).is_none());
    WriteFraction {
        avg: fracs.iter().sum::<f64>() / fracs.len().max(1) as f64,
        max: fracs.iter().copied().fold(0.0, f64::max),
        aggregate: b.tree.stats.overall_write_fraction(),
        trav: b.tree.stats.trav,
    }
}

// ------------------------------------------------- §3.3 layout claim

/// Layout ablation result (§3.3: a locality-oblivious layout serves 89%
/// more NVBM writes for a refinement pass than the locality-aware one).
#[derive(Debug, Clone, Copy)]
pub struct LayoutAblation {
    /// NVBM write lines, locality-oblivious placement.
    pub oblivious_writes: u64,
    /// NVBM write lines after the feature-directed transformation.
    pub aware_writes: u64,
}

impl LayoutAblation {
    /// Extra writes of the oblivious layout, in percent.
    pub fn extra_percent(&self) -> f64 {
        (self.oblivious_writes as f64 / self.aware_writes.max(1) as f64 - 1.0) * 100.0
    }
}

/// Run the §3.3 motivating example: a refinement burst over a hot
/// subdomain under both layouts.
pub fn layout_ablation() -> LayoutAblation {
    let run = |aware: bool| -> u64 {
        let cfg = PmConfig::builder()
            .dynamic_transform(false)
            .seed_c0(false)
            .c0_capacity_octants(1 << 14)
            .build()
            .expect("valid config");
        let mut t = PmOctree::create(NvbmArena::new(ARENA_BYTES, DeviceModel::default()), cfg);
        t.refine(pmoctree_morton::OctKey::root()).unwrap();
        for i in 0..8 {
            let phi = if i < 4 { 0.0 } else { 9.0 }; // octants 2-5 hot, 7-10 cold
            t.set_data(
                pmoctree_morton::OctKey::root().child(i),
                pm_octree::CellData { phi, ..Default::default() },
            )
            .unwrap();
        }
        t.add_feature(Box::new(|_k, d| d.phi.abs() < 0.5));
        // Persist the setup: the burst then runs against a *shared*
        // version, as in steady-state operation.
        t.persist();
        if aware {
            while t.maybe_transform() {}
        }
        // Measured window: a refinement burst over the hot subdomain
        // plus the end-of-step persist (the natural unit of meshing
        // work; both layouts must end durable).
        let before = t.store.arena.stats.nvbm.write_lines;
        for i in 0..4 {
            let k = pmoctree_morton::OctKey::root().child(i);
            t.refine(k).unwrap();
            for c in 0..8 {
                t.refine(k.child(c)).unwrap();
            }
        }
        t.persist();
        t.store.arena.stats.nvbm.write_lines - before
    };
    LayoutAblation { oblivious_writes: run(false), aware_writes: run(true).max(1) }
}

// ------------------------------------------------- Figs. 6/7 weak scaling

/// One weak-scaling point for one scheme.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Processors.
    pub procs: usize,
    /// Global elements.
    pub elements: usize,
    /// Execution time (virtual seconds).
    pub exec_secs: f64,
    /// Phase percentages `[refine, balance, partition, solve, persist]`.
    pub phase_percent: [f64; 5],
    /// Phase seconds `[refine, balance, partition, solve, persist]`.
    pub phases: [f64; 5],
    /// NVBM cacheline reads summed across ranks (FS-backed persistence
    /// traffic included at line granularity).
    pub nvbm_read_lines: u64,
    /// NVBM cacheline writes summed across ranks.
    pub nvbm_write_lines: u64,
    /// Octant-location counters summed across ranks.
    pub trav: TraversalStats,
}

/// Run one cluster configuration and summarize.
pub fn run_point(scheme: Scheme, procs: usize, max_level: u8, steps: usize) -> ScalingRow {
    let mut c = ClusterSim::new(scheme, procs, sim_cfg(steps, max_level), ARENA_BYTES);
    let r: ClusterReport = c.run(steps);
    let mut stats = pmoctree_nvbm::MemStats::new(0);
    for rank in &c.ranks {
        stats.merge(&rank.backend.mem_stats());
    }
    ScalingRow {
        scheme: r.scheme,
        procs,
        elements: r.peak_elements,
        exec_secs: r.exec_secs(),
        phase_percent: r.phase_percent(),
        phases: r.phase_secs(),
        nvbm_read_lines: stats.nvbm.read_lines,
        nvbm_write_lines: stats.nvbm.write_lines,
        trav: stats.trav,
    }
}

/// The fixed smoke configuration `ci.sh` runs twice (1 worker, then 4)
/// to prove the determinism invariant end-to-end: virtual-time rows
/// only, so [`crate::json::cluster_smoke_json`] must serialize to the
/// same bytes for any worker count. Wall-clock and the worker count are
/// carried for the stdout report and never serialized.
pub struct ClusterSmoke {
    /// One row per scheme at the fixed smoke point.
    pub rows: Vec<ScalingRow>,
    /// Wall-clock seconds of the whole smoke (stdout only).
    pub wall_secs: f64,
    /// Worker count the smoke ran under (stdout only).
    pub workers: usize,
}

/// Run the cluster smoke: PM-octree and the in-core baseline at a fixed
/// 4-rank point.
pub fn cluster_smoke() -> ClusterSmoke {
    let t0 = std::time::Instant::now();
    let rows = vec![run_point(Scheme::pm_default(), 4, 4, 3), run_point(Scheme::InCore, 4, 4, 3)];
    ClusterSmoke {
        rows,
        wall_secs: t0.elapsed().as_secs_f64(),
        workers: rayon::current_num_threads(),
    }
}

/// Figures 6 & 7: weak scaling. `points` are `(procs, max_level)` pairs
/// chosen so elements/proc stays roughly constant; all three schemes run
/// at every point.
pub fn fig6_weak_scaling(points: &[(usize, u8)], steps: usize) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for &(procs, level) in points {
        for scheme in [Scheme::pm_default(), Scheme::InCore, Scheme::Etree] {
            rows.push(run_point(scheme, procs, level, steps));
        }
    }
    rows
}

/// Figures 8 & 9: strong scaling — fixed problem size, varying ranks.
pub fn fig8_strong_scaling(procs_list: &[usize], max_level: u8, steps: usize) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for &procs in procs_list {
        for scheme in [Scheme::pm_default(), Scheme::InCore, Scheme::Etree] {
            rows.push(run_point(scheme, procs, max_level, steps));
        }
    }
    rows
}

// ------------------------------------------------- Fig. 10 DRAM size

/// One Figure 10 row.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig10Row {
    /// Label ("pm C0=..oct", "in-core", "out-of-core").
    pub c0_octants: Option<usize>,
    /// Scheme name.
    pub scheme: &'static str,
    /// Execution time (virtual seconds).
    pub exec_secs: f64,
    /// Phase seconds `[refine, balance, partition, solve, persist]`.
    pub phases: [f64; 5],
    /// C0↔C1 merge operations over the run (PM only).
    pub merges: u64,
    /// NVBM cacheline reads over the run.
    pub nvbm_read_lines: u64,
    /// NVBM cacheline writes over the run.
    pub nvbm_write_lines: u64,
    /// Octant-location counters over the run.
    pub trav: TraversalStats,
}

/// Figure 10: PM-octree execution time as the DRAM budget for `C0`
/// varies, bracketed by the out-of-core and in-core baselines (paper:
/// 1→8 GB gives 233.5 s → 89.1 s; 491 merges at the smallest size).
pub fn fig10_dram_size(c0_sizes: &[usize], max_level: u8, steps: usize) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    let cfg = sim_cfg(steps, max_level);
    // Out-of-core bound.
    let r = run_point(Scheme::Etree, 1, max_level, steps);
    rows.push(Fig10Row {
        c0_octants: None,
        scheme: "out-of-core",
        exec_secs: r.exec_secs,
        phases: r.phases,
        merges: 0,
        nvbm_read_lines: r.nvbm_read_lines,
        nvbm_write_lines: r.nvbm_write_lines,
        trav: r.trav,
    });
    for &c0 in c0_sizes {
        let sim = Simulation::new(cfg);
        let mut b = PmBackend::new(PmOctree::create(
            NvbmArena::new(ARENA_BYTES, DeviceModel::default()),
            PmConfig::builder()
                .dynamic_transform(true)
                .c0_capacity_octants(c0)
                .build()
                .expect("valid config"),
        ));
        let report = sim.run(&mut b);
        let stats = &b.tree.store.arena.stats;
        rows.push(Fig10Row {
            c0_octants: Some(c0),
            scheme: "pm-octree",
            exec_secs: report.total_secs(),
            phases: five_phase(report.component_secs()),
            merges: b.tree.events.merges,
            nvbm_read_lines: stats.nvbm.read_lines,
            nvbm_write_lines: stats.nvbm.write_lines,
            trav: stats.trav,
        });
    }
    // In-core bound.
    let r = run_point(Scheme::InCore, 1, max_level, steps);
    rows.push(Fig10Row {
        c0_octants: None,
        scheme: "in-core",
        exec_secs: r.exec_secs,
        phases: r.phases,
        merges: 0,
        nvbm_read_lines: r.nvbm_read_lines,
        nvbm_write_lines: r.nvbm_write_lines,
        trav: r.trav,
    });
    rows
}

// ------------------------------------------------- Fig. 11 transformation

/// One Figure 11 row.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig11Row {
    /// Mesh elements.
    pub elements: usize,
    /// Execution seconds without the dynamic transformation.
    pub without_secs: f64,
    /// With it.
    pub with_secs: f64,
    /// NVBM write lines without.
    pub without_writes: u64,
    /// With.
    pub with_writes: u64,
    /// Phase seconds without the transformation.
    pub phases_without: [f64; 5],
    /// Phase seconds with it.
    pub phases_with: [f64; 5],
    /// Octant-location counters without the transformation.
    pub trav_without: TraversalStats,
    /// With it.
    pub trav_with: TraversalStats,
}

impl Fig11Row {
    /// Relative time saving (positive = transformation helps).
    pub fn time_saving_percent(&self) -> f64 {
        (1.0 - self.with_secs / self.without_secs.max(1e-30)) * 100.0
    }

    /// Relative NVBM-write saving.
    pub fn write_saving_percent(&self) -> f64 {
        (1.0 - self.with_writes as f64 / self.without_writes.max(1) as f64) * 100.0
    }
}

/// Figure 11: execution time with/without dynamic transformation across
/// mesh sizes. The C0 budget is fixed, so at small sizes everything hot
/// fits in DRAM (no benefit) and at large sizes the transformation pays
/// (paper: −24.7% time, −31% NVBM writes at 224M elements where C0 held
/// only 7% of octants).
pub fn fig11_transform(levels: &[u8], c0_fraction: f64, steps: usize) -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    for &level in levels {
        // DRAM budget fixed relative to the mesh: the paper's largest
        // case fits only ~7% of octants in C0.
        let est_octants = (520.0 + 2.2 * 4f64.powi(level as i32)) as usize;
        let c0_octants = ((est_octants as f64 * c0_fraction) as usize).max(32);
        let run = |transform: bool| -> (f64, u64, usize, [f64; 5], TraversalStats) {
            let sim = Simulation::new(sim_cfg(steps, level));
            let mut b = PmBackend::new(PmOctree::create(
                NvbmArena::new(ARENA_BYTES.max(1 << (2 * level + 10)), DeviceModel::default()),
                PmConfig::builder()
                    .dynamic_transform(transform)
                    .c0_capacity_octants(c0_octants)
                    .build()
                    .expect("valid config"),
            ));
            if transform {
                b.tree.add_feature(pmoctree_solver::refinement_feature(
                    sim.interface,
                    sim.time.clone(),
                    sim.cfg.band_cells,
                ));
                b.tree.add_feature(pmoctree_solver::solver_feature());
            }
            let report = sim.run(&mut b);
            (
                report.total_secs(),
                b.tree.store.arena.stats.nvbm.write_lines,
                report.peak_leaves(),
                five_phase(report.component_secs()),
                b.tree.store.arena.stats.trav,
            )
        };
        let (without_secs, without_writes, elements, phases_without, trav_without) = run(false);
        let (with_secs, with_writes, _, phases_with, trav_with) = run(true);
        rows.push(Fig11Row {
            elements,
            without_secs,
            with_secs,
            without_writes,
            with_writes,
            phases_without,
            phases_with,
            trav_without,
            trav_with,
        });
    }
    rows
}

// ------------------------------------------------- traced droplet run

/// A fully traced single-rank PM droplet run: the observability demo
/// behind `repro droplet`. The tracer journals every FailPlan-labelled
/// phase (`persist::*`, `gc::sweep`, `c0::evict`, `replica::ship`,
/// `transform`) plus the driver-level `step::*` spans, and the metrics
/// registry absorbs the arena's `MemStats` at the end of the run.
pub struct DropletRun {
    /// Per-step breakdown from the driver (the span tree must agree with
    /// these totals — see the trace acceptance tests).
    pub report: RunReport,
    /// Final element count.
    pub elements: usize,
    /// The event journal (single rank, tid 0).
    pub events: Vec<pmoctree_nvbm::Event>,
    /// Metrics snapshot (counters, gauges, duration histograms).
    pub metrics: pmoctree_nvbm::Metrics,
    /// Octant-location counters over the run.
    pub trav: TraversalStats,
    /// Wear / write-amplification attribution of the run's NVBM device.
    pub wear: pmoctree_nvbm::WearReport,
    /// Recovered flight-recorder dump (from the durable media view).
    pub blackbox: pmoctree_nvbm::RecorderDump,
}

/// Run the droplet workload with tracing attached (tid 0). Deterministic:
/// two runs at the same scale produce byte-identical journals.
pub fn droplet_traced(steps: usize, max_level: u8) -> DropletRun {
    droplet_run(steps, max_level, true, true)
}

/// Same workload with the tracer compiled to its disabled (`None`) state:
/// the zero-inflation control for the acceptance tests. Its `events` and
/// `metrics` are empty.
pub fn droplet_untraced(steps: usize, max_level: u8) -> DropletRun {
    droplet_run(steps, max_level, false, true)
}

fn droplet_run(steps: usize, max_level: u8, traced: bool, recorder: bool) -> DropletRun {
    use pmoctree_amr::OctreeBackend;
    let sim = Simulation::new(sim_cfg(steps, max_level));
    let mut arena = NvbmArena::new(ARENA_BYTES, DeviceModel::default());
    arena.set_recorder_enabled(recorder);
    let mut b = PmBackend::new(PmOctree::create(
        arena,
        PmConfig::builder().dynamic_transform(true).replicas(true).build().expect("valid config"),
    ));
    // Features arm the sampling/transform paths so their spans appear.
    b.tree.add_feature(pmoctree_solver::refinement_feature(
        sim.interface,
        sim.time.clone(),
        sim.cfg.band_cells,
    ));
    b.tree.add_feature(pmoctree_solver::solver_feature());
    if traced {
        b.set_tracer(pmoctree_nvbm::Tracer::enabled(0));
    }
    let report = sim.run(&mut b);
    b.tree.store.arena.publish_metrics();
    let tr = b.tracer();
    DropletRun {
        elements: b.leaf_count(),
        events: tr.events(),
        metrics: tr.metrics(),
        trav: b.tree.store.arena.stats.trav,
        wear: b.tree.store.arena.stats.wear_report(),
        blackbox: b.tree.store.arena.recorder_dump(),
        report,
    }
}

/// Flight-recorder cost on the traced droplet run: the same workload
/// with the recorder enabled vs disabled, compared on the virtual clock.
/// Both runs are untraced so the comparison isolates the recorder's
/// line writes + flushes from the (DRAM-side) journal cost.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RecorderOverhead {
    /// Total virtual seconds with the recorder on.
    pub on_secs: f64,
    /// Total virtual seconds with the recorder off.
    pub off_secs: f64,
}

impl RecorderOverhead {
    /// Virtual-clock inflation of recording, in percent.
    pub fn inflation_percent(&self) -> f64 {
        if self.off_secs == 0.0 {
            0.0
        } else {
            (self.on_secs / self.off_secs - 1.0) * 100.0
        }
    }
}

/// Measure the recorder's virtual-clock overhead on the droplet run
/// (acceptance bound: ≤ 5% inflation).
pub fn recorder_overhead(steps: usize, max_level: u8) -> RecorderOverhead {
    let on = droplet_run(steps, max_level, false, true);
    let off = droplet_run(steps, max_level, false, false);
    RecorderOverhead { on_secs: on.report.total_secs(), off_secs: off.report.total_secs() }
}

/// The `repro blackbox` result: a deterministic droplet run, its
/// recovered flight-recorder dump (exactly what a post-crash reboot
/// would read from the media), and the recorder's measured overhead.
#[derive(Debug, Clone)]
pub struct BlackboxRun {
    /// Final element count of the run.
    pub elements: usize,
    /// Steps executed.
    pub steps: usize,
    /// The recovered ring, oldest surviving entry first.
    pub dump: pmoctree_nvbm::RecorderDump,
    /// Wear attribution of the same run.
    pub wear: pmoctree_nvbm::WearReport,
    /// Recorder on/off virtual-clock comparison.
    pub overhead: RecorderOverhead,
}

/// Run the blackbox experiment: drive the droplet workload with the
/// recorder on, then recover the ring from the durable media view — the
/// same path `recorder::recover` takes after a real crash. Virtual-clock
/// deterministic: worker count must not change a byte of the output.
pub fn blackbox(steps: usize, max_level: u8) -> BlackboxRun {
    let run = droplet_run(steps, max_level, false, true);
    BlackboxRun {
        elements: run.elements,
        steps,
        dump: run.blackbox,
        wear: run.wear,
        overhead: recorder_overhead(steps, max_level),
    }
}

// ------------------------------------------------- §5.6 recovery

/// §5.6 failure-recovery comparison.
pub fn recovery(max_level: u8, kill_at: usize) -> Vec<RecoveryReport> {
    recovery_comparison(sim_cfg(kill_at + 2, max_level), kill_at, ARENA_BYTES)
}

// ------------------------------------------------- ablations (DESIGN.md)

/// Ablation: sampling size `N_sample` vs transformation quality
/// (detection rate of the genuinely hot subtree) and sampling cost.
#[derive(Debug, Clone, Copy)]
pub struct SamplingRow {
    /// Samples per subtree.
    pub n_sample: usize,
    /// Did the transformation fire on the hot tree?
    pub detected: bool,
    /// NVBM read lines spent sampling.
    pub sample_reads: u64,
}

/// Sweep `N_sample` (paper default: `min(100, size)`).
pub fn ablation_sampling(ns: &[usize]) -> Vec<SamplingRow> {
    ns.iter()
        .map(|&n| {
            let cfg = PmConfig::builder()
                .dynamic_transform(false)
                .seed_c0(false)
                .n_sample(n)
                .c0_capacity_octants(1 << 14)
                .build()
                .expect("valid config");
            let mut t = PmOctree::create(NvbmArena::new(ARENA_BYTES, DeviceModel::default()), cfg);
            t.refine(pmoctree_morton::OctKey::root()).unwrap();
            // Make child 0 deeply refined and hot, the rest cold.
            let k0 = pmoctree_morton::OctKey::root().child(0);
            t.refine(k0).unwrap();
            for c in 0..8 {
                t.refine(k0.child(c)).unwrap();
            }
            t.update_leaves(|k, d| {
                let hot = k0.contains(&k);
                Some(pm_octree::CellData { phi: if hot { 0.0 } else { 9.0 }, ..*d })
            });
            t.add_feature(Box::new(|_k, d| d.phi.abs() < 0.5));
            let r0 = t.store.arena.stats.nvbm.read_lines;
            let detected = t.maybe_transform()
                && t.c0_subtree_keys().iter().any(|key| key.contains(&k0) || k0.contains(key));
            SamplingRow {
                n_sample: n,
                detected,
                sample_reads: t.store.arena.stats.nvbm.read_lines - r0,
            }
        })
        .collect()
}

/// Ablation: number of retained versions vs copy overhead. PM-octree
/// keeps exactly two (V_i, V_{i-1}); this measures the NVBM bytes a
/// k-version variant would hold for the same run (computed analytically
/// from per-step deltas).
#[derive(Debug, Clone, Copy)]
pub struct VersionRow {
    /// Retained versions.
    pub versions: usize,
    /// Live NVBM bytes at the end of the run.
    pub live_bytes: u64,
}

/// Checkpoint-cadence ablation: the in-core baseline's execution time and
/// worst-case lost work as the snapshot interval varies, vs PM-octree
/// persisting every step. Quantifies the paper's motivation: snapshot
/// I/O is the in-core scheme's durability tax, and stretching the
/// interval trades that tax for recovery staleness — a dial PM-octree
/// simply does not have.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotRow {
    /// Snapshot interval in steps (`None` = PM-octree, persists every step).
    pub interval: Option<usize>,
    /// Execution time (virtual seconds).
    pub exec_secs: f64,
    /// Worst-case steps of work lost at a crash.
    pub max_lost_steps: usize,
}

/// Run the cadence sweep.
pub fn ablation_snapshot_interval(
    intervals: &[usize],
    steps: usize,
    max_level: u8,
) -> Vec<SnapshotRow> {
    let mut rows = Vec::new();
    for &interval in intervals {
        let sim = Simulation::new(sim_cfg(steps, max_level));
        let mut b = InCoreBackend::new();
        b.snapshot_interval = interval;
        let report = sim.run(&mut b);
        rows.push(SnapshotRow {
            interval: Some(interval),
            exec_secs: report.total_secs(),
            max_lost_steps: interval,
        });
    }
    let sim = Simulation::new(sim_cfg(steps, max_level));
    let mut b = PmBackend::new(PmOctree::create(
        NvbmArena::new(ARENA_BYTES, DeviceModel::default()),
        PmConfig::builder().dynamic_transform(false).build().expect("valid config"),
    ));
    let report = sim.run(&mut b);
    rows.push(SnapshotRow { interval: None, exec_secs: report.total_secs(), max_lost_steps: 0 });
    rows
}

/// Measure live bytes for 1..=k retained versions (version i's exclusive
/// bytes stay allocated while it is retained).
pub fn ablation_versions(max_versions: usize, steps: usize, max_level: u8) -> Vec<VersionRow> {
    // Run once, recording per-step exclusive (new) bytes.
    let sim = Simulation::new(sim_cfg(steps, max_level));
    let mut b = PmBackend::new(PmOctree::create(
        NvbmArena::new(ARENA_BYTES, DeviceModel::default()),
        PmConfig::builder().dynamic_transform(false).build().expect("valid config"),
    ));
    sim.construct(&mut b);
    let mut new_bytes_per_step = Vec::new();
    let mut base_bytes = 0u64;
    for s in 0..steps {
        sim.step(&mut b, s);
        let (total, shared) = b.tree.events.last_overlap.unwrap_or((0, 0));
        new_bytes_per_step.push(((total - shared) * 128) as u64);
        base_bytes = (total * 128) as u64;
    }
    (1..=max_versions)
        .map(|v| VersionRow {
            versions: v,
            live_bytes: base_bytes
                + new_bytes_per_step.iter().rev().take(v.saturating_sub(1)).sum::<u64>(),
        })
        .collect()
}
