//! JSON-level validation of exported Chrome traces (`repro trace-check`).
//!
//! [`pmoctree_obsv::chrome::validate_events`] checks the in-memory
//! journal; this module re-checks the *serialized* artifact, so a bug in
//! the exporter (or a hand-edited file) is caught too: the text must
//! parse as strict JSON, carry a `traceEvents` array, and every per-
//! `(pid, tid)` stream must have monotone timestamps and balanced,
//! name-matched `B`/`E` pairs.

use std::collections::BTreeMap;

use serde_json::Value;

/// What a valid trace file contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Distinct `(pid, tid)` streams.
    pub threads: usize,
    /// Complete spans (matched `B`/`E` pairs).
    pub spans: usize,
    /// Counter (`ph:"C"`) events — metric snapshots appended by
    /// [`pmoctree_obsv::chrome::trace_json_with_metrics`].
    pub counters: usize,
}

/// Validate the text of a Chrome trace-event JSON file.
pub fn check_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing \"traceEvents\" array".to_string())?;
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut spans = 0usize;
    let mut counters = 0usize;
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric \"ts\""))?;
        if ph == "C" {
            // Counter snapshots are appended at ts 0 after the span
            // stream; they are exempt from the per-tid monotone check
            // but must carry an args payload.
            if e.get("args").is_none() {
                return Err(format!("event {i} ({name}): counter event without \"args\""));
            }
            counters += 1;
            continue;
        }
        let pid = e.get("pid").and_then(Value::as_u64).unwrap_or(0);
        let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0);
        let key = (pid, tid);
        if let Some(&prev) = last_ts.get(&key) {
            if ts < prev {
                return Err(format!(
                    "event {i} ({name}): ts {ts} goes back in time on tid {tid} (prev {prev})"
                ));
            }
        }
        last_ts.insert(key, ts);
        match ph {
            "B" => stacks.entry(key).or_default().push(name.to_string()),
            "E" => match stacks.entry(key).or_default().pop() {
                Some(top) if top == name => spans += 1,
                Some(top) => {
                    return Err(format!("event {i}: E({name}) closes open span {top} on tid {tid}"))
                }
                None => return Err(format!("event {i}: E({name}) with no open span on tid {tid}")),
            },
            "i" | "I" => {}
            other => return Err(format!("event {i} ({name}): unsupported ph {other:?}")),
        }
    }
    for ((_, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: trace ends with span {open} still open"));
        }
    }
    Ok(TraceSummary { events: events.len(), threads: last_ts.len(), spans, counters })
}

/// Does this text look like a `BENCH_*.json` document rather than a
/// Chrome trace? True when it parses as a JSON object with a top-level
/// `"experiment"` key.
pub fn looks_like_bench_doc(text: &str) -> bool {
    matches!(serde_json::from_str(text), Ok(doc) if doc.get("experiment").is_some())
}

/// The four device regions a wear report must attribute bytes to.
const WEAR_REGIONS: [&str; 4] = ["root_table", "octree", "rt_heap", "recorder"];

fn check_wear_section(wear: &Value, ctx: &str) -> Result<(), String> {
    let regions = wear
        .get("bytes_by_region")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"bytes_by_region\" array"))?;
    for want in WEAR_REGIONS {
        if !regions.iter().any(|r| r.get("name").and_then(Value::as_str) == Some(want)) {
            return Err(format!("{ctx}: bytes_by_region lacks region {want:?}"));
        }
    }
    let phases = wear
        .get("bytes_by_phase")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"bytes_by_phase\" array"))?;
    if phases.is_empty() {
        return Err(format!("{ctx}: bytes_by_phase is empty"));
    }
    let hist = wear
        .get("wear_hist")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"wear_hist\" array"))?;
    if hist.len() != 16 {
        return Err(format!("{ctx}: wear_hist has {} buckets, want 16", hist.len()));
    }
    for field in ["max_wear", "max_wear_offset", "bytes_committed"] {
        if wear.get(field).and_then(Value::as_u64).is_none() {
            return Err(format!("{ctx}: missing numeric \"{field}\""));
        }
    }
    Ok(())
}

/// The `wear-level` driver's entry must additionally carry the wear
/// GC's own counters: the occupancy watermark the compaction pass
/// triggers at (a fraction in `(0, 1]`) plus the relocation totals.
fn check_wear_leveling_section(entry: &Value) -> Result<(), String> {
    let lev = entry
        .get("wear_leveling")
        .filter(|v| v.as_object().is_some())
        .ok_or_else(|| "driver \"wear-level\": missing \"wear_leveling\" section".to_string())?;
    let wm = lev
        .get("occupancy_watermark")
        .and_then(Value::as_f64)
        .ok_or_else(|| "wear_leveling: missing numeric \"occupancy_watermark\"".to_string())?;
    if !(wm > 0.0 && wm <= 1.0) {
        return Err(format!("wear_leveling: occupancy_watermark {wm} outside (0, 1]"));
    }
    for field in ["relocations", "bytes_moved"] {
        if lev.get(field).and_then(Value::as_u64).is_none() {
            return Err(format!("wear_leveling: missing numeric \"{field}\""));
        }
    }
    Ok(())
}

/// Validate a `BENCH_*.json` document's shape. Every document must be
/// strict JSON with an `"experiment"` string; wear and blackbox
/// documents additionally must carry complete wear attribution (all
/// four regions, a non-empty phase breakdown, the 16-bucket histogram)
/// and — for blackbox — a well-formed recovered recorder dump. The
/// `wear-level` driver entry of a wear document must also carry its
/// `wear_leveling` GC-counter section. Returns the experiment name.
pub fn check_bench_doc(text: &str) -> Result<String, String> {
    let doc = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let kind = doc
        .get("experiment")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing \"experiment\" string".to_string())?
        .to_string();
    match kind.as_str() {
        "wear" => {
            let drivers = doc
                .get("drivers")
                .and_then(Value::as_array)
                .ok_or_else(|| "wear: missing \"drivers\" array".to_string())?;
            if drivers.is_empty() {
                return Err("wear: no drivers recorded".to_string());
            }
            for d in drivers {
                let name = d
                    .get("driver")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "wear: driver entry without \"driver\" name".to_string())?;
                let wear =
                    d.get("wear").ok_or_else(|| format!("wear: driver {name:?} lacks \"wear\""))?;
                check_wear_section(wear, &format!("driver {name:?}"))?;
                if name == "wear-level" {
                    check_wear_leveling_section(d)?;
                }
            }
        }
        "blackbox" => {
            let dump = doc.get("dump").ok_or_else(|| "blackbox: missing \"dump\"".to_string())?;
            if dump.get("header_ok").and_then(Value::as_bool) != Some(true) {
                return Err("blackbox: dump.header_ok is not true".to_string());
            }
            let entries = dump
                .get("entries")
                .and_then(Value::as_array)
                .ok_or_else(|| "blackbox: dump lacks \"entries\" array".to_string())?;
            if entries.is_empty() {
                return Err("blackbox: recovered dump has no entries".to_string());
            }
            let wear = doc.get("wear").ok_or_else(|| "blackbox: missing \"wear\"".to_string())?;
            check_wear_section(wear, "blackbox")?;
        }
        _ => {}
    }
    Ok(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmoctree_nvbm::Tracer;
    use pmoctree_obsv::chrome;

    fn sample_trace() -> String {
        let t = Tracer::enabled(2);
        t.begin("step", 0, Some(0));
        t.begin("step::persist", 100, None);
        t.instant("sampling::decision", 150, Some(3));
        t.end("step::persist", 900);
        t.end("step", 1000);
        chrome::trace_json(&[(2, t.events())])
    }

    #[test]
    fn accepts_exporter_output() {
        let s = check_trace(&sample_trace()).unwrap();
        assert_eq!(s.events, 5);
        assert_eq!(s.threads, 1);
        assert_eq!(s.spans, 2);
    }

    #[test]
    fn rejects_garbage_and_imbalance() {
        assert!(check_trace("not json").is_err());
        assert!(check_trace("{}").is_err());
        // An open span never closed.
        let open = r#"{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":0,"tid":0}]}"#;
        assert!(check_trace(open).unwrap_err().contains("still open"));
        // Crossed spans.
        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":0,"pid":0,"tid":0},
            {"name":"b","ph":"B","ts":1,"pid":0,"tid":0},
            {"name":"a","ph":"E","ts":2,"pid":0,"tid":0}]}"#;
        assert!(check_trace(crossed).is_err());
        // Time travel within one tid.
        let back = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5,"pid":0,"tid":0},
            {"name":"a","ph":"E","ts":4,"pid":0,"tid":0}]}"#;
        assert!(check_trace(back).unwrap_err().contains("back in time"));
    }

    #[test]
    fn accepts_counter_events_from_metrics_exporter() {
        let t = Tracer::enabled(0);
        t.begin("step", 0, None);
        t.end("step", 500);
        let mut m = pmoctree_obsv::Metrics::new();
        m.counter_add("nvbm.flush_lines", 3);
        m.counter_add_labeled("svc.write_bytes", "tenant=\"t0\"", 42);
        let json = chrome::trace_json_with_metrics(&[(0, t.events())], &m);
        let s = check_trace(&json).unwrap();
        assert_eq!(s.spans, 1);
        assert!(s.counters >= 2, "both metric series become counter events: {s:?}");
    }

    #[test]
    fn bench_doc_detection_and_wear_shape() {
        assert!(!looks_like_bench_doc("not json"));
        assert!(!looks_like_bench_doc(r#"{"traceEvents":[]}"#));

        let mut st = pmoctree_nvbm::MemStats::default();
        st.wear_commit(0, 64);
        let wear = st.wear_report();
        let body =
            crate::json::wear_doc_for_tests(&[("droplet", &wear, None), ("service", &wear, None)]);
        assert!(looks_like_bench_doc(&body));
        assert_eq!(check_bench_doc(&body).unwrap(), "wear");

        // A wear doc missing a region must be rejected.
        let truncated = body.replace("root_table", "root_tably");
        assert!(check_bench_doc(&truncated).unwrap_err().contains("root_table"));

        // The wear-level driver's entry must carry the wear_leveling
        // section — absent on other drivers, required on it.
        let bare = crate::json::wear_doc_for_tests(&[("wear-level", &wear, None)]);
        assert!(check_bench_doc(&bare).unwrap_err().contains("wear_leveling"));
        let lev = crate::wear_bench::WearLeveling {
            occupancy_watermark: pm_rt::COMPACT_WATERMARK,
            relocations: 3,
            bytes_moved: 1024,
        };
        let leveled = crate::json::wear_doc_for_tests(&[
            ("droplet", &wear, None),
            ("wear-level", &wear, Some(&lev)),
        ]);
        assert_eq!(check_bench_doc(&leveled).unwrap(), "wear");
        let bad_wm = crate::wear_bench::WearLeveling { occupancy_watermark: 0.0, ..lev };
        let rejected = crate::json::wear_doc_for_tests(&[("wear-level", &wear, Some(&bad_wm))]);
        assert!(check_bench_doc(&rejected).unwrap_err().contains("occupancy_watermark"));

        // Unknown experiments only need the experiment key.
        assert_eq!(check_bench_doc(r#"{"experiment":"fig6","rows":[]}"#).unwrap(), "fig6");
    }

    #[test]
    fn independent_tids_do_not_interfere() {
        let a = Tracer::enabled(0);
        a.begin("x", 0, None);
        a.end("x", 50);
        let b = Tracer::enabled(1);
        b.begin("y", 10, None);
        b.end("y", 20);
        // Thread b's timestamps rewind relative to a's — legal, separate tid.
        let json = chrome::trace_json(&[(0, a.events()), (1, b.events())]);
        let s = check_trace(&json).unwrap();
        assert_eq!(s.threads, 2);
        assert_eq!(s.spans, 2);
    }
}
