//! JSON-level validation of exported Chrome traces (`repro trace-check`).
//!
//! [`pmoctree_obsv::chrome::validate_events`] checks the in-memory
//! journal; this module re-checks the *serialized* artifact, so a bug in
//! the exporter (or a hand-edited file) is caught too: the text must
//! parse as strict JSON, carry a `traceEvents` array, and every per-
//! `(pid, tid)` stream must have monotone timestamps and balanced,
//! name-matched `B`/`E` pairs.

use std::collections::BTreeMap;

use serde_json::Value;

/// What a valid trace file contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Distinct `(pid, tid)` streams.
    pub threads: usize,
    /// Complete spans (matched `B`/`E` pairs).
    pub spans: usize,
}

/// Validate the text of a Chrome trace-event JSON file.
pub fn check_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing \"traceEvents\" array".to_string())?;
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric \"ts\""))?;
        let pid = e.get("pid").and_then(Value::as_u64).unwrap_or(0);
        let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0);
        let key = (pid, tid);
        if let Some(&prev) = last_ts.get(&key) {
            if ts < prev {
                return Err(format!(
                    "event {i} ({name}): ts {ts} goes back in time on tid {tid} (prev {prev})"
                ));
            }
        }
        last_ts.insert(key, ts);
        match ph {
            "B" => stacks.entry(key).or_default().push(name.to_string()),
            "E" => match stacks.entry(key).or_default().pop() {
                Some(top) if top == name => spans += 1,
                Some(top) => {
                    return Err(format!("event {i}: E({name}) closes open span {top} on tid {tid}"))
                }
                None => return Err(format!("event {i}: E({name}) with no open span on tid {tid}")),
            },
            "i" | "I" => {}
            other => return Err(format!("event {i} ({name}): unsupported ph {other:?}")),
        }
    }
    for ((_, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: trace ends with span {open} still open"));
        }
    }
    Ok(TraceSummary { events: events.len(), threads: last_ts.len(), spans })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmoctree_nvbm::Tracer;
    use pmoctree_obsv::chrome;

    fn sample_trace() -> String {
        let t = Tracer::enabled(2);
        t.begin("step", 0, Some(0));
        t.begin("step::persist", 100, None);
        t.instant("sampling::decision", 150, Some(3));
        t.end("step::persist", 900);
        t.end("step", 1000);
        chrome::trace_json(&[(2, t.events())])
    }

    #[test]
    fn accepts_exporter_output() {
        let s = check_trace(&sample_trace()).unwrap();
        assert_eq!(s.events, 5);
        assert_eq!(s.threads, 1);
        assert_eq!(s.spans, 2);
    }

    #[test]
    fn rejects_garbage_and_imbalance() {
        assert!(check_trace("not json").is_err());
        assert!(check_trace("{}").is_err());
        // An open span never closed.
        let open = r#"{"traceEvents":[{"name":"a","ph":"B","ts":0,"pid":0,"tid":0}]}"#;
        assert!(check_trace(open).unwrap_err().contains("still open"));
        // Crossed spans.
        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":0,"pid":0,"tid":0},
            {"name":"b","ph":"B","ts":1,"pid":0,"tid":0},
            {"name":"a","ph":"E","ts":2,"pid":0,"tid":0}]}"#;
        assert!(check_trace(crossed).is_err());
        // Time travel within one tid.
        let back = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5,"pid":0,"tid":0},
            {"name":"a","ph":"E","ts":4,"pid":0,"tid":0}]}"#;
        assert!(check_trace(back).unwrap_err().contains("back in time"));
    }

    #[test]
    fn independent_tids_do_not_interfere() {
        let a = Tracer::enabled(0);
        a.begin("x", 0, None);
        a.end("x", 50);
        let b = Tracer::enabled(1);
        b.begin("y", 10, None);
        b.end("y", 20);
        // Thread b's timestamps rewind relative to a's — legal, separate tid.
        let json = chrome::trace_json(&[(0, a.events()), (1, b.events())]);
        let s = check_trace(&json).unwrap();
        assert_eq!(s.threads, 2);
        assert_eq!(s.spans, 2);
    }
}
