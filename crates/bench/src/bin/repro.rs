//! Regenerate every table and figure of the paper's evaluation at
//! laptop scale. Usage:
//!
//! ```text
//! repro [table2|fig3|write_fraction|layout|fig6|fig7|fig8|fig9|fig10|fig11|recovery|ablations|all]
//! [--quick] [--workers N]
//! repro crash-sweep [--smoke]
//! repro recovery-rt [--smoke]
//! repro service [--smoke]
//! repro wear-level [--smoke]
//! repro droplet [--quick] [--trace out.json] [--metrics out.prom]
//! repro blackbox [--quick]
//! repro cluster-smoke [--workers N]
//! repro morton [--quick]
//! repro trace-check FILE
//! ```
//!
//! `--workers N` pins the worker-pool size for any subcommand (default:
//! `RAYON_NUM_THREADS` or the machine's cores). By the determinism
//! invariant it may only change wall-clock time, never results.
//!
//! `cluster-smoke` (not part of `all`) runs a fixed 4-rank scaling point
//! and writes `BENCH_cluster_smoke.json` containing virtual-time results
//! only; `ci.sh` runs it under 1 and 4 workers and fails if the two files
//! differ by a byte.
//!
//! `crash-sweep` (not part of `all`) enumerates every crash opportunity
//! of a droplet workload under every crash mode and verifies recovery at
//! each one, writing `BENCH_crash_sweep.json`; it then repeats the sweep
//! over the multi-tenant service front-end (`svc::*` failpoints, batch
//! all-or-nothing oracle). It exits non-zero on any contract violation.
//!
//! `service` (not part of `all`) drives the multi-tenant versioned state
//! service with a Zipf-skewed workload (≥100 tenants, s≈1.0): batched
//! commands, MVCC snapshot pin/reread gates, per-tenant quotas. Writes
//! throughput, p50/p99 virtual-clock latency, and bytes-per-commit to
//! `BENCH_service.json`; exits non-zero if a pinned snapshot ever
//! changes. Single-threaded and virtual-clock only, so the JSON is part
//! of the `ci.sh` determinism gates.
//!
//! `wear-level` (not part of `all`) measures the log-structured region
//! manager's endurance levers: rt-heap bytes written per commit on the
//! service workload and wear-histogram flatness on the droplet workload,
//! both against recorded pre-log baselines, plus the wear GC's
//! relocation counters. Writes `BENCH_wear_level.json` and merges the
//! `wear-level` entry (with its `wear_leveling` section) into
//! `BENCH_wear.json`; exits non-zero if a pinned snapshot changed under
//! relocation or the wear GC never relocated a blob. Virtual-clock
//! deterministic, part of the `ci.sh` 1-vs-4-worker byte-diff gates.
//!
//! `recovery-rt` (not part of `all`) exercises the pm-rt
//! orthogonal-persistence runtime: sampled crashes (including at
//! `rt::commit`) must resume through `pm_restore` to a byte-identical
//! report, and whole-application restart must beat the file-checkpoint
//! baseline ≥10x. Writes `BENCH_recovery_rt.json`; exits non-zero if
//! either claim fails.
//!
//! `droplet` (not part of `all`) runs the droplet workload with tracing
//! on, prints the span attribution and per-timestep tables, and writes
//! `BENCH_droplet.json`; `--trace` additionally exports the journal as
//! Chrome trace-event JSON (load in `chrome://tracing` or Perfetto) and
//! `--metrics` dumps a Prometheus text snapshot. `trace-check` validates
//! such an exported trace file and exits non-zero if it is malformed.
//!
//! `blackbox` (not part of `all`) runs the droplet workload with the
//! persistent flight recorder enabled, recovers the ring from the
//! arena's own media, prints the tail of the recovered entries, and
//! measures the recorder's virtual-clock overhead against a
//! recorder-off run of the same workload. Writes `BENCH_blackbox.json`
//! (virtual-clock deterministic, part of the `ci.sh` 1-vs-4-worker
//! byte-diff gates); exits non-zero if the recovered dump is malformed
//! or the overhead exceeds the 5% bound.
//!
//! `trace-check FILE` validates an exported Chrome trace, or — when the
//! file is a `BENCH_*.json` document carrying an `"experiment"` key —
//! checks that document's shape instead (wear reports must carry all
//! four regions and the 16-bucket wear histogram).
//!
//! `morton` (not part of `all`) times the batched Morton kernels under
//! the scalar fallback and under the hardware dispatch on real
//! wall-clock nanoseconds, and writes the comparison to
//! `BENCH_morton.json`. It is the only experiment whose output is
//! machine-dependent, so it is excluded from the determinism gates.
//!
//! `--quick` shrinks problem sizes (used by CI/tests); default sizes take
//! a few minutes. Output is plain text in the papers' row format —
//! `repro all | tee results.txt` regenerates the data behind
//! EXPERIMENTS.md.

use pmoctree_bench::fmt::*;
use pmoctree_bench::json::*;
use pmoctree_bench::*;

struct Scale {
    fig3_steps: usize,
    fig3_level: u8,
    weak_points: Vec<(usize, u8)>,
    strong_procs: Vec<usize>,
    strong_level: u8,
    fig10_level: u8,
    fig10_sizes: Vec<usize>,
    fig11_levels: Vec<u8>,
    steps: usize,
    recovery_level: u8,
}

impl Scale {
    fn quick() -> Self {
        Scale {
            fig3_steps: 10,
            fig3_level: 4,
            weak_points: vec![(1, 3), (4, 4), (16, 5)],
            strong_procs: vec![2, 4, 8],
            strong_level: 5,
            fig10_level: 5,
            fig10_sizes: vec![32, 128, 512, 4096],
            fig11_levels: vec![4, 5, 6],
            steps: 3,
            recovery_level: 4,
        }
    }

    fn full() -> Self {
        Scale {
            fig3_steps: 40,
            fig3_level: 5,
            weak_points: vec![(1, 3), (4, 4), (16, 5), (64, 6)],
            strong_procs: vec![2, 4, 8, 16, 32],
            strong_level: 6,
            fig10_level: 6,
            fig10_sizes: vec![32, 128, 512, 4096, 16384],
            fig11_levels: vec![4, 5, 6, 7],
            steps: 10,
            recovery_level: 5,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };

    // `--trace`, `--metrics` and `--workers` consume a value, so the
    // value must not be mistaken for the positional subcommand.
    let mut positionals: Vec<String> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace_path = it.next().cloned(),
            "--metrics" => metrics_path = it.next().cloned(),
            "--workers" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => rayon::set_num_threads(n),
                _ => {
                    eprintln!("usage: repro --workers N (N >= 1)");
                    std::process::exit(2);
                }
            },
            _ if a.starts_with("--") => {}
            _ => positionals.push(a.clone()),
        }
    }
    let what = positionals.first().cloned().unwrap_or_else(|| "all".into());
    let all = what == "all";

    if all || what == "table2" {
        println!("{}", table2_str(&table2()));
    }
    if all || what == "fig3" {
        println!("{}", fig3_str(&fig3_overlap(scale.fig3_steps, scale.fig3_level)));
    }
    if all || what == "write_fraction" {
        let w = write_fraction(8, 4);
        println!("{}", write_fraction_str(&w));
        write_bench_json("write_fraction", &write_fraction_json(&w));
        // Wear attribution rides along: write_fraction itself runs on
        // DRAM snapshots, so an NVBM droplet run supplies the per-phase
        // per-region bytes-written and the hottest-block report.
        let run = droplet_untraced(scale.steps, scale.recovery_level);
        println!("NVBM wear attribution (droplet driver):");
        println!("{}", wear_str(&run.wear));
        write_wear_json("droplet", &run.wear);
    }
    if all || what == "layout" {
        println!("{}", layout_str(&layout_ablation()));
    }
    if all || what == "fig6" || what == "fig7" {
        let rows = fig6_weak_scaling(&scale.weak_points, scale.steps);
        println!(
            "{}",
            scaling_str(
                "Fig 6/7: weak scaling (elements grow with processors; breakdown per scheme)",
                &rows
            )
        );
        write_bench_json("fig6", &scaling_json("fig6", &rows));
    }
    if all || what == "fig8" || what == "fig9" {
        let rows = fig8_strong_scaling(&scale.strong_procs, scale.strong_level, scale.steps);
        write_bench_json("fig8", &scaling_json("fig8", &rows));
        println!(
            "{}",
            scaling_str("Fig 8/9: strong scaling (fixed problem size, varying processors)", &rows)
        );
        // Ideal-speedup companion (Fig 8a): PM rows normalized to the
        // smallest processor count.
        let pm: Vec<&ScalingRow> = rows.iter().filter(|r| r.scheme == "pm-octree").collect();
        if let Some(base) = pm.first() {
            println!("Fig 8 ideal-speedup check (pm-octree):");
            println!("procs | exec (s) | speedup | ideal");
            for r in &pm {
                println!(
                    "{:>5} | {:>8.3} | {:>7.2} | {:>5.2}",
                    r.procs,
                    r.exec_secs,
                    base.exec_secs / r.exec_secs,
                    r.procs as f64 / base.procs as f64
                );
            }
            println!();
        }
    }
    if all || what == "fig10" {
        let rows = fig10_dram_size(&scale.fig10_sizes, scale.fig10_level, scale.steps);
        println!("{}", fig10_str(&rows));
        write_bench_json("fig10", &fig10_json(&rows));
    }
    if all || what == "fig11" {
        let rows = fig11_transform(&scale.fig11_levels, 0.3, 8);
        println!("{}", fig11_str(&rows));
        write_bench_json("fig11", &fig11_json(&rows));
    }
    if all || what == "recovery" {
        let rows = recovery(scale.recovery_level, 12);
        println!("{}", recovery_str(&rows));
        write_bench_json("recovery", &recovery_json(&rows));
    }
    if all || what == "ablations" {
        println!("{}", sampling_str(&ablation_sampling(&[1, 10, 100, 1000])));
        println!("{}", versions_str(&ablation_versions(5, 8, 4)));
        println!("{}", snapshot_interval_str(&ablation_snapshot_interval(&[1, 2, 5, 10], 20, 4)));
    }
    if what == "crash-sweep" {
        let cfg = if args.iter().any(|a| a == "--smoke") || quick {
            CrashSweepConfig::smoke()
        } else {
            CrashSweepConfig::full()
        };
        let sweep = crash_sweep(&cfg);
        println!("{}", crash_sweep_str(&sweep));
        write_bench_json("crash_sweep", &crash_sweep_json(&sweep));
        if sweep.total_violations() > 0 {
            eprintln!("crash sweep found {} contract violations", sweep.total_violations());
            std::process::exit(1);
        }
        if sweep.interleavings == 0 {
            eprintln!(
                "crash sweep fired no per-thread interleaving opportunities: the \
                 domain-parallel sweeps did not run through the sharded path"
            );
            std::process::exit(1);
        }
        let svc = service_crash_sweep(&cfg);
        println!("{}", service_sweep_str(&svc));
        if svc.total_violations() > 0 {
            eprintln!("service crash sweep found {} violations", svc.total_violations());
            std::process::exit(1);
        }
        // The log-structured heap's failpoints must appear in both
        // sweeps' opportunity spaces — a sweep that never crossed them
        // proved nothing about the log's crash surface.
        for label in ["heap::append", "heap::compact", "wear::relocate"] {
            for (sweep_name, counts) in
                [("droplet", &sweep.label_counts), ("service", &svc.label_counts)]
            {
                if !counts.iter().any(|(l, n)| l == label && *n > 0) {
                    eprintln!(
                        "crash sweep ({sweep_name}): failpoint {label} fired no opportunities"
                    );
                    std::process::exit(1);
                }
            }
        }
    }
    if what == "wear-level" {
        let cfg = if args.iter().any(|a| a == "--smoke") || quick {
            WearLevelConfig::smoke()
        } else {
            WearLevelConfig::full()
        };
        let b = wear_level_bench(&cfg);
        println!("{}", wear_level_str(&b));
        write_bench_json("wear_level", &wear_level_json(&b));
        write_wear_json_leveled("wear-level", &b.wear, &b.leveling);
        if !b.service_snapshot_ok {
            eprintln!("wear-level: a pinned snapshot changed under relocation");
            std::process::exit(1);
        }
        if b.leveling.relocations == 0 {
            eprintln!("wear-level: the wear GC never relocated a blob");
            std::process::exit(1);
        }
    }
    if what == "service" {
        let cfg = if args.iter().any(|a| a == "--smoke") || quick {
            ServiceBenchConfig::smoke()
        } else {
            ServiceBenchConfig::full()
        };
        let b = service_bench(&cfg);
        println!("{}", service_str(&b));
        write_bench_json("service", &service_json(&b));
        write_wear_json("service", &b.wear);
        if !b.snapshot_ok {
            eprintln!("service: a pinned snapshot changed under later commits");
            std::process::exit(1);
        }
        if b.tenants < 100 {
            eprintln!("service: acceptance needs >= 100 tenants, ran {}", b.tenants);
            std::process::exit(1);
        }
    }
    if what == "recovery-rt" {
        let cfg = if args.iter().any(|a| a == "--smoke") || quick {
            RecoveryRtConfig::smoke()
        } else {
            RecoveryRtConfig::full()
        };
        let r = recovery_rt(&cfg);
        println!("{}", recovery_rt_str(&r));
        write_bench_json("recovery_rt", &recovery_rt_json(&r));
        if !r.all_identical() {
            eprintln!("recovery-rt: a crashed run did not resume to the identical report");
            std::process::exit(1);
        }
        if r.speedup() < 10.0 {
            eprintln!(
                "recovery-rt: whole-app PM restart only {:.2}x faster than the file baseline",
                r.speedup()
            );
            std::process::exit(1);
        }
    }
    if what == "droplet" {
        let run = droplet_traced(scale.steps, scale.recovery_level);
        println!("{}", droplet_str(&run));
        write_bench_json("droplet", &droplet_json(&run));
        if let Some(path) = &trace_path {
            let json = pmoctree_obsv::chrome::trace_json_with_metrics(
                &[(0, run.events.clone())],
                &run.metrics,
            );
            match std::fs::write(path, &json) {
                Ok(()) => println!("wrote Chrome trace to {path} ({} bytes)", json.len()),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &metrics_path {
            let text = pmoctree_obsv::prom::text(&run.metrics);
            match std::fs::write(path, &text) {
                Ok(()) => println!("wrote Prometheus snapshot to {path}"),
                Err(e) => {
                    eprintln!("could not write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    if what == "blackbox" {
        let b = blackbox(scale.steps, scale.recovery_level);
        print!("{}", blackbox_str(&b));
        write_bench_json("blackbox", &blackbox_json(&b));
        if !b.dump.header_ok || b.dump.entries.is_empty() {
            eprintln!("blackbox: recovered flight-recorder dump is malformed");
            std::process::exit(1);
        }
        if b.overhead.inflation_percent() > 5.0 {
            eprintln!(
                "blackbox: recorder inflates the traced droplet run by {:.2}% (bound: 5%)",
                b.overhead.inflation_percent()
            );
            std::process::exit(1);
        }
    }
    if what == "morton" {
        // 2^14 keys keep the working set cache-resident, so the numbers
        // compare kernel arithmetic rather than memory bandwidth.
        let (keys, iters) = if quick { (1 << 12, 5) } else { (1 << 14, 50) };
        let b = morton_bench(keys, iters);
        print!("{}", morton_str(&b));
        write_bench_json("morton", &morton_json(&b));
    }
    if what == "cluster-smoke" {
        let smoke = cluster_smoke();
        println!("{}", cluster_smoke_str(&smoke));
        write_bench_json("cluster_smoke", &cluster_smoke_json(&smoke));
    }
    if what == "trace-check" {
        let Some(path) = positionals.get(1) else {
            eprintln!("usage: repro trace-check FILE");
            std::process::exit(2);
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("could not read {path}: {e}");
                std::process::exit(1);
            }
        };
        if looks_like_bench_doc(&text) {
            match check_bench_doc(&text) {
                Ok(kind) => println!("{path}: valid BENCH document (experiment {kind:?})"),
                Err(e) => {
                    eprintln!("{path}: INVALID bench document: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            match check_trace(&text) {
                Ok(summary) => print!("{}", trace_check_str(path, &summary)),
                Err(e) => {
                    eprintln!("{path}: INVALID trace: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
