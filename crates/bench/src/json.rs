//! Machine-readable experiment output: `BENCH_<experiment>.json` files
//! next to the `repro` run, so regressions in virtual execution time or
//! NVBM traffic can be diffed without parsing the human tables.
//!
//! The format is hand-rolled (no serde in the dependency closure): flat
//! objects and arrays of numbers/strings only.

use crate::experiments::*;

/// One `"key": value` JSON pair, already rendered.
fn field(key: &str, value: String) -> String {
    format!("\"{key}\": {value}")
}

fn obj(fields: Vec<String>) -> String {
    format!("{{{}}}", fields.join(", "))
}

fn arr(items: Vec<String>) -> String {
    format!("[{}]", items.join(",\n  "))
}

fn s(v: &str) -> String {
    format!("\"{v}\"")
}

/// Write `BENCH_<experiment>.json` in the current directory. Errors are
/// reported to stderr but never abort the run (the text tables remain
/// the primary output).
pub fn write_bench_json(experiment: &str, body: &str) {
    let path = format!("BENCH_{experiment}.json");
    if let Err(e) = std::fs::write(&path, format!("{body}\n")) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// JSON for the write-fraction experiment, including the traversal
/// counters that make the leaf-index optimisation observable.
pub fn write_fraction_json(w: &WriteFraction) -> String {
    obj(vec![
        field("experiment", s("write_fraction")),
        field("avg", format!("{:.6}", w.avg)),
        field("max", format!("{:.6}", w.max)),
        field("aggregate", format!("{:.6}", w.aggregate)),
        field("root_descents", w.trav.root_descents.to_string()),
        field("index_hits", w.trav.index_hits.to_string()),
        field("index_rebuilds", w.trav.index_rebuilds.to_string()),
        field("index_rebuild_octants", w.trav.index_rebuild_octants.to_string()),
    ])
}

/// JSON for a scaling experiment (Figs 6/7 or 8/9).
pub fn scaling_json(experiment: &str, rows: &[ScalingRow]) -> String {
    let items = rows
        .iter()
        .map(|r| {
            obj(vec![
                field("scheme", s(r.scheme)),
                field("procs", r.procs.to_string()),
                field("elements", r.elements.to_string()),
                field("exec_secs", format!("{:.9}", r.exec_secs)),
                field("nvbm_read_lines", r.nvbm_read_lines.to_string()),
                field("nvbm_write_lines", r.nvbm_write_lines.to_string()),
            ])
        })
        .collect();
    obj(vec![field("experiment", s(experiment)), field("rows", arr(items))])
}

/// JSON for Figure 10 (DRAM size sweep).
pub fn fig10_json(rows: &[Fig10Row]) -> String {
    let items = rows
        .iter()
        .map(|r| {
            obj(vec![
                field("scheme", s(r.scheme)),
                field("c0_octants", r.c0_octants.map_or("null".to_string(), |n| n.to_string())),
                field("exec_secs", format!("{:.9}", r.exec_secs)),
                field("merges", r.merges.to_string()),
                field("nvbm_read_lines", r.nvbm_read_lines.to_string()),
                field("nvbm_write_lines", r.nvbm_write_lines.to_string()),
            ])
        })
        .collect();
    obj(vec![field("experiment", s("fig10")), field("rows", arr(items))])
}

/// JSON for Figure 11 (dynamic transformation off/on).
pub fn fig11_json(rows: &[Fig11Row]) -> String {
    let items = rows
        .iter()
        .map(|r| {
            obj(vec![
                field("elements", r.elements.to_string()),
                field("without_secs", format!("{:.9}", r.without_secs)),
                field("with_secs", format!("{:.9}", r.with_secs)),
                field("nvbm_write_lines_without", r.without_writes.to_string()),
                field("nvbm_write_lines_with", r.with_writes.to_string()),
            ])
        })
        .collect();
    obj(vec![field("experiment", s("fig11")), field("rows", arr(items))])
}

/// JSON for the §5.6 recovery comparison.
pub fn recovery_json(rows: &[pmoctree_cluster::RecoveryReport]) -> String {
    let items = rows
        .iter()
        .map(|r| {
            obj(vec![
                field("scheme", s(r.scheme)),
                field("same_node_secs", format!("{:.9}", r.same_node_secs)),
                field(
                    "new_node_secs",
                    r.new_node_secs.map_or("null".to_string(), |t| format!("{t:.9}")),
                ),
            ])
        })
        .collect();
    obj(vec![field("experiment", s("recovery")), field("rows", arr(items))])
}

/// JSON for the crash-point sweep: per-mode recovery outcomes plus
/// failpoint coverage.
pub fn crash_sweep_json(sweep: &crate::crash_sweep::CrashSweep) -> String {
    let rows = sweep
        .rows
        .iter()
        .map(|r| {
            obj(vec![
                field("mode", s(&r.mode)),
                field("checked", r.checked.to_string()),
                field("recovered_committed", r.recovered_committed.to_string()),
                field("recovered_in_flight", r.recovered_in_flight.to_string()),
                field("violations", r.violations.to_string()),
            ])
        })
        .collect();
    let labels = sweep
        .label_counts
        .iter()
        .map(|(l, n)| obj(vec![field("label", s(l)), field("count", n.to_string())]))
        .collect();
    obj(vec![
        field("experiment", s("crash_sweep")),
        field("steps", sweep.steps.to_string()),
        field("elements", sweep.elements.to_string()),
        field("opportunities", sweep.opportunities.to_string()),
        field("total_violations", sweep.total_violations().to_string()),
        field("labels", arr(labels)),
        field("rows", arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_json_is_wellformed() {
        let rows = vec![ScalingRow {
            scheme: "pm-octree",
            procs: 4,
            elements: 624,
            exec_secs: 0.01,
            phase_percent: [0.0; 5],
            nvbm_read_lines: 100,
            nvbm_write_lines: 50,
        }];
        let j = scaling_json("fig6", &rows);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"nvbm_read_lines\": 100"));
        assert!(j.contains("\"exec_secs\": 0.010000000"));
        // Balanced braces/brackets (cheap well-formedness proxy).
        let open = j.matches('{').count() + j.matches('[').count();
        let close = j.matches('}').count() + j.matches(']').count();
        assert_eq!(open, close);
    }
}
