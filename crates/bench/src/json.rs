//! Machine-readable experiment output: `BENCH_<experiment>.json` files
//! next to the `repro` run, so regressions in virtual execution time or
//! NVBM traffic can be diffed without parsing the human tables.
//!
//! Serialization is serde-derived: each experiment's row struct carries
//! `#[derive(Serialize)]` and the functions here wrap the rows in a small
//! document struct (`{"experiment": ..., "rows": [...]}`), so fields
//! added to a row automatically appear in its JSON.

use crate::experiments::*;
use pmoctree_nvbm::TraversalStats;
use serde::Serialize;

/// Write an already-rendered JSON document to `BENCH_<experiment>.json`
/// in the current directory. Errors are reported to stderr but never
/// abort the run (the text tables remain the primary output).
pub fn write_bench_json(experiment: &str, body: &str) {
    let path = format!("BENCH_{experiment}.json");
    if let Err(e) = std::fs::write(&path, format!("{body}\n")) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

#[derive(Serialize)]
struct WriteFractionDoc {
    experiment: &'static str,
    avg: f64,
    max: f64,
    aggregate: f64,
    trav: TraversalStats,
}

/// JSON for the write-fraction experiment, including the traversal
/// counters that make the leaf-index optimisation observable.
pub fn write_fraction_json(w: &WriteFraction) -> String {
    json_doc(&WriteFractionDoc {
        experiment: "write_fraction",
        avg: w.avg,
        max: w.max,
        aggregate: w.aggregate,
        trav: w.trav,
    })
}

#[derive(Serialize)]
struct ScalingDoc {
    experiment: String,
    rows: Vec<ScalingRow>,
}

/// JSON for a scaling experiment (Figs 6/7 or 8/9).
pub fn scaling_json(experiment: &str, rows: &[ScalingRow]) -> String {
    json_doc(&ScalingDoc { experiment: experiment.to_string(), rows: rows.to_vec() })
}

/// JSON for the cluster smoke. Only the virtual-time rows are
/// serialized — wall-clock and worker count deliberately stay out, so a
/// 1-worker and a 4-worker run must emit byte-identical files (the
/// `ci.sh` determinism gate diffs them).
pub fn cluster_smoke_json(s: &ClusterSmoke) -> String {
    json_doc(&ScalingDoc { experiment: "cluster_smoke".to_string(), rows: s.rows.to_vec() })
}

#[derive(Serialize)]
struct Fig10Doc {
    experiment: &'static str,
    rows: Vec<Fig10Row>,
}

/// JSON for Figure 10 (DRAM size sweep).
pub fn fig10_json(rows: &[Fig10Row]) -> String {
    json_doc(&Fig10Doc { experiment: "fig10", rows: rows.to_vec() })
}

#[derive(Serialize)]
struct Fig11Doc {
    experiment: &'static str,
    rows: Vec<Fig11Row>,
}

/// JSON for Figure 11 (dynamic transformation off/on).
pub fn fig11_json(rows: &[Fig11Row]) -> String {
    json_doc(&Fig11Doc { experiment: "fig11", rows: rows.to_vec() })
}

#[derive(Serialize)]
struct MortonDoc {
    experiment: &'static str,
    dispatch: String,
    keys: usize,
    iters: u32,
    rows: Vec<crate::morton_bench::MortonRow>,
}

/// JSON for the Morton kernel microbenchmark. Real wall-clock
/// nanoseconds, machine-dependent by design — never part of the
/// determinism gates.
pub fn morton_json(b: &crate::morton_bench::MortonBench) -> String {
    json_doc(&MortonDoc {
        experiment: "morton",
        dispatch: b.dispatch.clone(),
        keys: b.keys,
        iters: b.iters,
        rows: b.rows.clone(),
    })
}

#[derive(Serialize)]
struct RecoveryDoc {
    experiment: &'static str,
    rows: Vec<pmoctree_cluster::RecoveryReport>,
}

/// JSON for the §5.6 recovery comparison.
pub fn recovery_json(rows: &[pmoctree_cluster::RecoveryReport]) -> String {
    json_doc(&RecoveryDoc { experiment: "recovery", rows: rows.to_vec() })
}

#[derive(Serialize)]
struct LabelCount {
    label: String,
    count: u64,
}

#[derive(Serialize)]
struct CrashSweepDoc {
    experiment: &'static str,
    steps: usize,
    elements: usize,
    opportunities: u64,
    interleavings: u64,
    total_violations: u64,
    labels: Vec<LabelCount>,
    rows: Vec<crate::crash_sweep::CrashModeRow>,
}

/// JSON for the crash-point sweep: per-mode recovery outcomes plus
/// failpoint coverage.
pub fn crash_sweep_json(sweep: &crate::crash_sweep::CrashSweep) -> String {
    json_doc(&CrashSweepDoc {
        experiment: "crash_sweep",
        steps: sweep.steps,
        elements: sweep.elements,
        opportunities: sweep.opportunities,
        interleavings: sweep.interleavings,
        total_violations: sweep.total_violations(),
        labels: sweep
            .label_counts
            .iter()
            .map(|(l, n)| LabelCount { label: l.clone(), count: *n })
            .collect(),
        rows: sweep.rows.clone(),
    })
}

#[derive(Serialize)]
struct AttrRowDoc {
    name: String,
    total_ns: u64,
    count: u64,
}

#[derive(Serialize)]
struct DropletDoc {
    experiment: &'static str,
    steps: usize,
    elements: usize,
    total_secs: f64,
    phases: [f64; 5],
    trav: TraversalStats,
    persist_ns: u64,
    persist_covered_ns: u64,
    attribution: Vec<AttrRowDoc>,
}

/// JSON for the traced droplet run: driver phase totals plus the span
/// attribution and the persist coverage figures (see the acceptance
/// tests for the ≥97% contract).
pub fn droplet_json(run: &DropletRun) -> String {
    let (persist_ns, persist_covered_ns) =
        pmoctree_obsv::coverage(&run.events, "persist").unwrap_or((0, 0));
    let attribution = pmoctree_obsv::inclusive_totals(&run.events)
        .unwrap_or_default()
        .into_iter()
        .map(|r| AttrRowDoc { name: r.name.to_string(), total_ns: r.total_ns, count: r.count })
        .collect();
    let comps = run.report.component_secs();
    json_doc(&DropletDoc {
        experiment: "droplet",
        steps: run.report.steps.len(),
        elements: run.elements,
        total_secs: run.report.total_secs(),
        phases: [comps[0], comps[1], 0.0, comps[2], comps[3]],
        trav: run.trav,
        persist_ns,
        persist_covered_ns,
        attribution,
    })
}

#[derive(Serialize)]
struct RecoveryRtStepDoc {
    step: usize,
    refine_ns: u64,
    balance_ns: u64,
    solve_ns: u64,
    persist_ns: u64,
    leaves: usize,
}

#[derive(Serialize)]
struct RecoveryRtDoc {
    experiment: &'static str,
    steps: usize,
    elements: usize,
    opportunities: u64,
    all_identical: bool,
    pm_restart_secs: f64,
    baseline_restart_secs: f64,
    baseline_lost_steps: usize,
    speedup: f64,
    crashes: Vec<crate::recovery_rt::CrashResumeRow>,
    report: Vec<RecoveryRtStepDoc>,
}

/// JSON for the whole-application restart experiment. The `report`
/// rows come from the *reference* run, which every sampled crashed run
/// reproduced byte-for-byte when `all_identical` holds — so a crashed
/// repro of this experiment emits this exact file.
pub fn recovery_rt_json(r: &crate::recovery_rt::RecoveryRt) -> String {
    json_doc(&RecoveryRtDoc {
        experiment: "recovery_rt",
        steps: r.steps,
        elements: r.elements,
        opportunities: r.opportunities,
        all_identical: r.all_identical(),
        pm_restart_secs: r.pm_restart_secs,
        baseline_restart_secs: r.baseline_restart_secs,
        baseline_lost_steps: r.baseline_lost_steps,
        speedup: r.speedup(),
        crashes: r.rows.clone(),
        report: r
            .report
            .steps
            .iter()
            .enumerate()
            .map(|(i, s)| RecoveryRtStepDoc {
                step: i,
                refine_ns: s.refine_ns,
                balance_ns: s.balance_ns,
                solve_ns: s.solve_ns,
                persist_ns: s.persist_ns,
                leaves: s.leaves,
            })
            .collect(),
    })
}

#[derive(Serialize)]
struct ServiceDoc {
    experiment: &'static str,
    bench: crate::service_bench::ServiceBench,
}

/// JSON for the multi-tenant service benchmark. Virtual-clock and count
/// fields only — a 1-worker and a 4-worker run must emit byte-identical
/// files (the `ci.sh` determinism gate diffs them).
pub fn service_json(b: &crate::service_bench::ServiceBench) -> String {
    json_doc(&ServiceDoc { experiment: "service", bench: b.clone() })
}

#[derive(Serialize)]
struct WearDriverDoc {
    driver: String,
    wear: pmoctree_nvbm::WearReport,
    /// The wear GC's own counters — an object on the `wear-level`
    /// driver's entry (where `trace-check` requires it), JSON `null` on
    /// every other driver's.
    wear_leveling: Option<crate::wear_bench::WearLeveling>,
}

/// Render one driver's wear entry (a single line, used by the
/// `BENCH_wear.json` merge below).
fn wear_driver_line(driver: &str, wear: &pmoctree_nvbm::WearReport) -> String {
    json_doc(&WearDriverDoc { driver: driver.to_string(), wear: wear.clone(), wear_leveling: None })
}

/// Render the whole wear document from per-driver entry lines.
fn wear_doc(lines: &[String]) -> String {
    format!("{{\"experiment\":\"wear\",\"drivers\":[\n{}\n]}}", lines.join(",\n"))
}

/// Build a full wear document in memory — test seam for the
/// `trace-check` shape validator, bypassing the filesystem merge. Each
/// driver optionally carries its `wear_leveling` section.
#[cfg(test)]
pub(crate) fn wear_doc_for_tests(
    drivers: &[(&str, &pmoctree_nvbm::WearReport, Option<&crate::wear_bench::WearLeveling>)],
) -> String {
    let lines: Vec<String> = drivers
        .iter()
        .map(|(d, w, l)| {
            json_doc(&WearDriverDoc {
                driver: d.to_string(),
                wear: (*w).clone(),
                wear_leveling: l.cloned(),
            })
        })
        .collect();
    wear_doc(&lines)
}

#[derive(Serialize)]
struct WearLevelDoc {
    experiment: &'static str,
    bench: crate::wear_bench::WearLevelBench,
}

/// JSON for the wear-leveling benchmark (`BENCH_wear_level.json`).
/// Virtual-clock and count fields only — part of the `ci.sh`
/// 1-vs-4-worker byte-diff gates.
pub fn wear_level_json(b: &crate::wear_bench::WearLevelBench) -> String {
    json_doc(&WearLevelDoc { experiment: "wear_level", bench: b.clone() })
}

/// Merge the `wear-level` driver's entry — wear report *plus* the
/// required `wear_leveling` GC-counter section — into `BENCH_wear.json`.
pub fn write_wear_json_leveled(
    driver: &str,
    wear: &pmoctree_nvbm::WearReport,
    leveling: &crate::wear_bench::WearLeveling,
) {
    let line = json_doc(&WearDriverDoc {
        driver: driver.to_string(),
        wear: wear.clone(),
        wear_leveling: Some(leveling.clone()),
    });
    merge_wear_line(driver, line);
}

/// Merge one driver's wear report into `BENCH_wear.json`: the file holds
/// one entry per driver (`droplet` from `repro write_fraction`, `service`
/// from `repro service`, `wear-level` from `repro wear-level`), each on
/// its own line, sorted by driver name — so the subcommands can update it
/// independently and the result is byte-stable under any invocation
/// order.
pub fn write_wear_json(driver: &str, wear: &pmoctree_nvbm::WearReport) {
    merge_wear_line(driver, wear_driver_line(driver, wear));
}

fn merge_wear_line(driver: &str, rendered: String) {
    let path = "BENCH_wear.json";
    // Keep the other drivers' lines from an existing (valid) file.
    let mut entries: Vec<(String, String)> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        if serde_json::from_str(&text).is_ok() {
            for line in text.lines() {
                let line = line.trim_end_matches(',');
                if let Some(rest) = line.strip_prefix("{\"driver\":\"") {
                    if let Some(name) = rest.split('"').next() {
                        if name != driver {
                            entries.push((name.to_string(), line.to_string()));
                        }
                    }
                }
            }
        }
    }
    entries.push((driver.to_string(), rendered));
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let lines: Vec<String> = entries.into_iter().map(|(_, l)| l).collect();
    let body = wear_doc(&lines);
    debug_assert!(serde_json::from_str(&body).is_ok(), "wear doc must be valid JSON");
    write_bench_json("wear", &body);
}

#[derive(Serialize)]
struct BlackboxDoc {
    experiment: &'static str,
    steps: usize,
    elements: usize,
    recorder_overhead_percent: f64,
    dump: pmoctree_nvbm::RecorderDump,
    wear: pmoctree_nvbm::WearReport,
}

/// JSON for the `repro blackbox` run: the recovered flight-recorder ring
/// plus the run's wear attribution and the recorder's measured
/// virtual-clock overhead. Virtual-clock deterministic — part of the
/// `ci.sh` 1-vs-4-worker byte-diff gates.
pub fn blackbox_json(b: &crate::experiments::BlackboxRun) -> String {
    json_doc(&BlackboxDoc {
        experiment: "blackbox",
        steps: b.steps,
        elements: b.elements,
        recorder_overhead_percent: b.overhead.inflation_percent(),
        dump: b.dump.clone(),
        wear: b.wear.clone(),
    })
}

fn json_doc<T: Serialize>(doc: &T) -> String {
    serde_json::to_string(doc).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> ScalingRow {
        ScalingRow {
            scheme: "pm-octree",
            procs: 4,
            elements: 624,
            exec_secs: 0.01,
            phase_percent: [0.0; 5],
            phases: [0.0, 0.0, 0.0, 0.005, 0.005],
            nvbm_read_lines: 100,
            nvbm_write_lines: 50,
            trav: TraversalStats::default(),
        }
    }

    #[test]
    fn scaling_json_is_wellformed() {
        let j = scaling_json("fig6", &[row()]);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"nvbm_read_lines\":100"));
        let v = serde_json::from_str(&j).expect("valid JSON");
        assert_eq!(v.get("experiment").and_then(|e| e.as_str()), Some("fig6"));
        let rows = v.get("rows").and_then(|r| r.as_array()).expect("rows array");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("procs").and_then(|p| p.as_u64()), Some(4));
        assert_eq!(
            rows[0].get("trav").and_then(|t| t.get("index_hits")).and_then(|h| h.as_u64()),
            Some(0)
        );
        let phases = rows[0].get("phases").and_then(|p| p.as_array()).expect("phases");
        assert_eq!(phases.len(), 5);
    }

    #[test]
    fn recovery_json_roundtrips_null() {
        let rows = vec![pmoctree_cluster::RecoveryReport {
            scheme: "out-of-core",
            same_node_secs: 0.5,
            new_node_secs: None,
            elements: 9,
            trav: TraversalStats::default(),
        }];
        let v = serde_json::from_str(&recovery_json(&rows)).expect("valid JSON");
        let r0 = &v.get("rows").and_then(|r| r.as_array()).unwrap()[0];
        assert_eq!(r0.get("new_node_secs"), Some(&serde_json::Value::Null));
        assert_eq!(r0.get("elements").and_then(|e| e.as_u64()), Some(9));
    }
}
