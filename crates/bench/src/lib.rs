//! Experiment harness: one function per table/figure of the paper's
//! evaluation (§5), shared by the `repro` binary and the Criterion
//! benches. Each function runs the scaled-down experiment and returns
//! structured rows; `fmt` helpers print them in the paper's shape.
//!
//! See DESIGN.md for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured comparison.
#![warn(missing_docs)]

pub mod crash_sweep;
pub mod experiments;
pub mod fmt;
pub mod json;
pub mod morton_bench;
pub mod recovery_rt;
pub mod service_bench;
pub mod trace_check;
pub mod wear_bench;

pub use crash_sweep::*;
pub use experiments::*;
pub use morton_bench::{morton_bench, MortonBench, MortonRow};
pub use recovery_rt::{recovery_rt, CrashResumeRow, RecoveryRt, RecoveryRtConfig};
pub use service_bench::{service_bench, ServiceBench, ServiceBenchConfig};
pub use trace_check::{check_bench_doc, check_trace, looks_like_bench_doc, TraceSummary};
pub use wear_bench::{wear_level_bench, WearLevelBench, WearLevelConfig, WearLeveling};
