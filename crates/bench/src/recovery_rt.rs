//! Whole-application instant-restart experiment (`repro recovery-rt`).
//!
//! Two claims are checked, both on the virtual clock:
//!
//! 1. **Correctness** — a persistent run crashed at *any* FailPlan
//!    opportunity (including inside `rt::commit`) resumes through
//!    `pm_restore` + the `pm-rt` runtime and finishes with a
//!    [`RunReport`] identical to the uncrashed same-seed run — so the
//!    BENCH JSON rendered from it is byte-identical too. A counting pass
//!    enumerates the opportunities; a sample (plus every `rt::commit`
//!    point) is replayed armed.
//! 2. **Latency** — whole-application restart (runtime swizzle +
//!    run-state read + tree reachability pass) is compared against the
//!    file-checkpoint baseline, whose restart must re-read its snapshot
//!    (written through `fsync`-charged [`pmoctree_simfs`] barriers) and
//!    **re-execute** every step since that snapshot. The paper's point:
//!    checkpoint cadence is a staleness dial PM-octree simply does not
//!    have.

use pm_octree::PmConfig;
use pmoctree_amr::{InCoreBackend, OctreeBackend};
use pmoctree_baselines::InCoreOctree;
use pmoctree_nvbm::{CrashMode, DeviceModel, FailPlan, NvbmArena};
use pmoctree_simfs::SimFs;
use pmoctree_solver::{
    reattach, resume_persistent, run_persistent, run_persistent_partial, Reattach, RunReport,
    SimConfig, Simulation,
};

use crate::experiments::sim_cfg;

/// Scale knobs for the experiment.
#[derive(Clone, Debug)]
pub struct RecoveryRtConfig {
    /// Simulation steps of the reference run.
    pub steps: usize,
    /// Maximum refinement level.
    pub max_level: u8,
    /// Emulated device size.
    pub arena_bytes: usize,
    /// Step after which the latency measurement kills the run.
    pub kill_after: usize,
    /// Evenly-spaced crash opportunities to replay armed (every
    /// `rt::commit` opportunity is added on top).
    pub crash_samples: usize,
}

impl RecoveryRtConfig {
    /// CI-sized configuration.
    pub fn smoke() -> Self {
        RecoveryRtConfig {
            steps: 3,
            max_level: 4,
            arena_bytes: 48 << 20,
            kill_after: 2,
            crash_samples: 4,
        }
    }

    /// Default configuration.
    pub fn full() -> Self {
        RecoveryRtConfig {
            steps: 5,
            max_level: 4,
            arena_bytes: 48 << 20,
            kill_after: 3,
            crash_samples: 8,
        }
    }
}

/// One armed crash → resume replay.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CrashResumeRow {
    /// Opportunity index the crash was injected at.
    pub opportunity: u64,
    /// Failpoint label when the opportunity was a labelled one.
    pub label: Option<String>,
    /// Step the resumed run continued at (`None` = nothing committed
    /// yet, the run started over from scratch).
    pub resumed_at: Option<usize>,
    /// Did the crashed-and-resumed run finish with the uncrashed
    /// run's exact report?
    pub identical: bool,
}

/// Experiment outcome.
#[derive(Clone, Debug)]
pub struct RecoveryRt {
    /// Steps of the reference run.
    pub steps: usize,
    /// Final element count of the reference run.
    pub elements: usize,
    /// The uncrashed reference report (the byte-identity target).
    pub report: RunReport,
    /// Total crash opportunities the reference run had.
    pub opportunities: u64,
    /// Armed crash → resume replays.
    pub rows: Vec<CrashResumeRow>,
    /// Whole-application PM restart latency, virtual seconds.
    pub pm_restart_secs: f64,
    /// File-checkpoint baseline restart latency (snapshot read + rebuild
    /// + re-execution of the steps since the snapshot), virtual seconds.
    pub baseline_restart_secs: f64,
    /// Steps the baseline had to re-execute (its lost work).
    pub baseline_lost_steps: usize,
}

impl RecoveryRt {
    /// Did every sampled crash resume to the identical report?
    pub fn all_identical(&self) -> bool {
        !self.rows.is_empty() && self.rows.iter().all(|r| r.identical)
    }

    /// Baseline restart / PM restart (the paper-shaped headline; the
    /// acceptance gate requires ≥ 10).
    pub fn speedup(&self) -> f64 {
        self.baseline_restart_secs / self.pm_restart_secs.max(1e-30)
    }
}

fn fingerprint(r: &RunReport) -> &[pmoctree_solver::StepBreakdown] {
    &r.steps
}

/// Run the experiment.
pub fn recovery_rt(rc: &RecoveryRtConfig) -> RecoveryRt {
    let cfg = SimConfig { steps: rc.steps, ..sim_cfg(rc.steps, rc.max_level) };
    let pm_cfg = PmConfig::default();

    // Uncrashed reference run.
    let reference =
        run_persistent(cfg, pm_cfg, NvbmArena::new(rc.arena_bytes, DeviceModel::default()))
            .expect("reference persistent run");
    let elements = reference.backend.tree.leaf_count();

    // Counting pass: same run with a counting plan installed, to learn
    // the opportunity space and where the labelled protocol points sit.
    let mut counted = NvbmArena::new(rc.arena_bytes, DeviceModel::default());
    counted.set_fail_plan(FailPlan::count());
    let counted_run = run_persistent(cfg, pm_cfg, counted).expect("counting persistent run");
    let mut counted_arena = counted_run.backend.tree.store.arena;
    let plan = counted_arena.take_fail_plan().expect("counting plan installed");
    let opportunities = plan.opportunities();
    let labels: Vec<(u64, &'static str)> = plan.labels().to_vec();
    assert_eq!(
        fingerprint(&counted_run.report),
        fingerprint(&reference.report),
        "a counting plan must not perturb the run"
    );

    // Sample: `crash_samples` evenly spaced opportunities plus every
    // rt::commit point (the new protocol surface under test).
    let mut sampled: Vec<u64> = (1..=rc.crash_samples as u64)
        .map(|i| i * opportunities / (rc.crash_samples as u64 + 1))
        .filter(|&at| at > 0)
        .collect();
    sampled.extend(labels.iter().filter(|(_, l)| *l == "rt::commit").map(|&(at, _)| at));
    sampled.sort_unstable();
    sampled.dedup();

    let mut rows = Vec::with_capacity(sampled.len());
    for at in sampled {
        let mut armed = NvbmArena::new(rc.arena_bytes, DeviceModel::default());
        armed.set_fail_plan(FailPlan::armed(at, CrashMode::LoseDirty));
        let armed_run = run_persistent(cfg, pm_cfg, armed).expect("armed persistent run");
        let mut arena = armed_run.backend.tree.store.arena;
        let mut plan = arena.take_fail_plan().expect("armed plan installed");
        let cap = plan.take_capture().expect("armed opportunity fired");
        let crashed = NvbmArena::from_media(cap.media, DeviceModel::default());
        let resumed = resume_persistent(crashed, cfg, pm_cfg).expect("resume after crash");
        rows.push(CrashResumeRow {
            opportunity: at,
            label: cap.label.map(str::to_string),
            resumed_at: resumed.resumed_at,
            identical: fingerprint(&resumed.report) == fingerprint(&reference.report),
        });
    }

    // Latency, PM side: kill a partial run, reattach in a cold process.
    let (mut b, _rt, _done) = run_persistent_partial(
        cfg,
        pm_cfg,
        NvbmArena::new(rc.arena_bytes, DeviceModel::default()),
        rc.kill_after,
    )
    .expect("staged persistent run");
    b.tree.store.arena.crash(CrashMode::LoseDirty);
    let cold = NvbmArena::from_media(b.tree.store.arena.clone_media(), DeviceModel::default());
    let pm_restart_secs = match reattach(cold, pm_cfg).expect("reattach") {
        Reattach::Resumable(backend, _, _) => backend.elapsed_ns() as f64 * 1e-9,
        Reattach::Nothing(_) => panic!("combined commits exist after {} steps", rc.kill_after),
    };

    // Latency, baseline side: in-core tree + snapshot files on the
    // disk-class file system (the paper's checkpoints live on the
    // parallel file system, not on NVBM). The snapshot after Construct
    // goes through the fsync-charged write path; restart re-reads it,
    // rebuilds the tree, and replays every step since (the file
    // checkpoint holds no newer state).
    let sim = Simulation::new(cfg);
    let mut ib = InCoreBackend::new();
    ib.fs = SimFs::on_disk();
    sim.construct(&mut ib);
    let snap = "recovery-rt-0.gfs".to_string();
    ib.tree.snapshot(&mut ib.fs, &snap);
    for s in 0..rc.kill_after {
        sim.step(&mut ib, s);
    }
    // Kill: DRAM gone, only the files survive.
    let InCoreBackend { mut fs, .. } = ib;
    let t0 = fs.clock.now_ns();
    let restored = InCoreOctree::restore(&mut fs, &snap).expect("snapshot readable");
    let io_ns = fs.clock.now_ns() - t0;
    let rebuild_ns = restored.clock.now_ns();
    let mut rb = InCoreBackend { tree: restored, fs, ..InCoreBackend::new() };
    let replay0 = rb.elapsed_ns();
    for s in 0..rc.kill_after {
        sim.step(&mut rb, s);
    }
    let replay_ns = rb.elapsed_ns() - replay0;
    let baseline_restart_secs = (io_ns + rebuild_ns + replay_ns) as f64 * 1e-9;

    RecoveryRt {
        steps: rc.steps,
        elements,
        report: reference.report,
        opportunities,
        rows,
        pm_restart_secs,
        baseline_restart_secs,
        baseline_lost_steps: rc.kill_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_recovery_rt_is_identical_and_fast() {
        let r = recovery_rt(&RecoveryRtConfig::smoke());
        assert!(r.opportunities > 1000, "opportunity space too small: {}", r.opportunities);
        assert!(
            r.rows.iter().any(|row| row.label.as_deref() == Some("rt::commit")),
            "rt::commit opportunities must be sampled: {:?}",
            r.rows
        );
        assert!(r.all_identical(), "non-identical resumes: {:#?}", r.rows);
        assert!(
            r.speedup() >= 10.0,
            "whole-app PM restart must beat the file baseline ≥10×: {:.2}× ({} vs {})",
            r.speedup(),
            r.pm_restart_secs,
            r.baseline_restart_secs
        );
    }
}
