//! Acceptance tests for the observability layer (ISSUE.md tentpole):
//!
//! 1. the exported Chrome trace is valid,
//! 2. `persist::*` child spans cover ≥97% of the total persist cost and
//!    the `step::persist` spans agree with the driver's breakdown,
//! 3. two same-seed runs produce byte-identical traces,
//! 4. tracing inflates the virtual clock by exactly 0 (the tracer is a
//!    pure observer; only arena operations advance the clock),
//! 5. worker-count invariance: the cluster smoke's BENCH JSON bytes, its
//!    exported trace, and the trace-check summary are identical under
//!    1, 2 and 4 pool workers.

use pmoctree_bench::json::cluster_smoke_json;
use pmoctree_bench::{check_trace, cluster_smoke, droplet_traced, droplet_untraced, sim_cfg};
use pmoctree_cluster::{ClusterSim, Scheme};
use pmoctree_obsv::{chrome, coverage, inclusive_totals, step_table};

const STEPS: usize = 3;
const LEVEL: u8 = 4;

#[test]
fn exported_trace_is_valid_chrome_json() {
    let run = droplet_traced(STEPS, LEVEL);
    chrome::validate_events(&run.events).expect("journal well-formed");
    let json = chrome::trace_json(&[(0, run.events.clone())]);
    let summary = check_trace(&json).expect("exporter output re-validates");
    assert_eq!(summary.events, run.events.len());
    assert_eq!(summary.threads, 1);
    assert!(summary.spans > 0);
}

#[test]
fn persist_spans_cover_the_persist_cost() {
    let run = droplet_traced(STEPS, LEVEL);

    // The persist::* children must account for ≥97% of the persist span
    // itself (in virtual time the gap is exactly zero: only arena ops
    // advance the clock, and inside persist they all sit in a child).
    let (parent_ns, child_ns) = coverage(&run.events, "persist").expect("persist spans present");
    assert!(parent_ns > 0, "no persist cost recorded");
    assert!(
        child_ns as f64 >= 0.97 * parent_ns as f64,
        "persist children cover only {child_ns} of {parent_ns} ns"
    );

    // And the step::persist spans must agree with the driver breakdown.
    let persist_report_ns: u64 = run.report.steps.iter().map(|s| s.persist_ns).sum();
    let rows = inclusive_totals(&run.events).expect("journal well-formed");
    let span_ns = rows.iter().find(|r| r.name == "step::persist").map_or(0, |r| r.total_ns);
    assert_eq!(span_ns, persist_report_ns, "span tree disagrees with the driver breakdown");
}

#[test]
fn step_table_matches_driver_breakdown() {
    let run = droplet_traced(STEPS, LEVEL);
    let table = step_table(&run.events).expect("journal well-formed");
    assert_eq!(table.len(), run.report.steps.len());
    for (st, rep) in table.iter().zip(&run.report.steps) {
        assert_eq!(st.total_ns, rep.total_ns());
        let get = |n: &str| st.phases.iter().find(|(p, _)| *p == n).map_or(0, |(_, ns)| *ns);
        assert_eq!(get("step::refine"), rep.refine_ns);
        assert_eq!(get("step::balance"), rep.balance_ns);
        assert_eq!(get("step::solve"), rep.solve_ns);
        assert_eq!(get("step::persist"), rep.persist_ns);
    }
}

#[test]
fn same_seed_runs_emit_byte_identical_traces() {
    let a = droplet_traced(STEPS, LEVEL);
    let b = droplet_traced(STEPS, LEVEL);
    assert_eq!(a.events, b.events, "journals diverge between identical runs");
    let ja = chrome::trace_json(&[(0, a.events)]);
    let jb = chrome::trace_json(&[(0, b.events)]);
    assert_eq!(ja, jb, "exported traces diverge between identical runs");
}

/// The worker-pool determinism gate at the artifact level: everything
/// `repro cluster-smoke` and a traced cluster run emit must be
/// byte-identical whether the pool has 1, 2 or 4 workers. This is what
/// lets `ci.sh` diff two smoke runs as a hard failure condition.
#[test]
fn cluster_artifacts_byte_identical_across_worker_counts() {
    let run = |workers: usize| {
        rayon::set_num_threads(workers);
        let json = cluster_smoke_json(&cluster_smoke());
        let mut c = ClusterSim::new(Scheme::pm_default(), 2, sim_cfg(2, 4), 32 << 20);
        c.enable_tracing();
        c.run(2);
        let trace = chrome::trace_json(&c.trace_threads());
        let summary = check_trace(&trace).expect("cluster trace must validate");
        (json, trace, summary)
    };
    let prev = rayon::current_num_threads();
    let (json_1, trace_1, summary_1) = run(1);
    assert!(summary_1.spans > 0, "cluster trace must contain spans");
    for workers in [2, 4] {
        let (json, trace, summary) = run(workers);
        assert_eq!(json, json_1, "BENCH_cluster_smoke.json bytes differ under {workers} workers");
        assert_eq!(trace, trace_1, "exported trace differs under {workers} workers");
        assert_eq!(summary, summary_1, "trace-check output differs under {workers} workers");
    }
    rayon::set_num_threads(prev);
}

#[test]
fn tracing_does_not_inflate_the_virtual_clock() {
    let traced = droplet_traced(STEPS, LEVEL);
    let untraced = droplet_untraced(STEPS, LEVEL);
    assert!(untraced.events.is_empty(), "disabled tracer must journal nothing");
    // Not "<3%": exactly equal. The tracer reads the virtual clock but
    // never advances it, so the workload cost is bit-identical.
    assert_eq!(
        traced.report.component_secs(),
        untraced.report.component_secs(),
        "tracing changed the virtual phase costs"
    );
    assert_eq!(traced.report.total_secs(), untraced.report.total_secs());
    assert_eq!(traced.elements, untraced.elements);
}
