//! Offline stand-in for `serde_json`: [`to_string`] over the compat
//! [`serde::Serialize`] trait, plus a small [`Value`] type with a strict
//! recursive-descent parser ([`from_str`]). The parser exists so tooling
//! (`repro trace-check`, the trace acceptance test) can validate emitted
//! JSON through a real parse rather than string matching.

use std::collections::BTreeMap;
use std::fmt;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.json(&mut out);
    Ok(out)
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The member map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a JSON document. Strict: trailing garbage, trailing commas,
/// unquoted keys, and bare NaN/Infinity are all errors.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid utf-8 in escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid hex escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = from_str(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":"x\ny"},"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":1} x").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn round_trips_serialize() {
        let s = to_string(&vec![1u64, 2, 3]).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str(&s).unwrap().as_array().unwrap().len(), 3);
    }
}
