//! Offline, dependency-free stand-in for the slice of the `rayon` API the
//! workspace uses (`par_iter`, `par_iter_mut`, `into_par_iter`).
//!
//! The build environment cannot reach a crates registry, so the workspace
//! path-redirects `rayon` here. The "parallel" iterators are sequential
//! `std` iterators: the simulator's virtual clock models device latency,
//! not wall-clock threading, so a sequential schedule is both honest and
//! required for deterministic cost accounting. The `Send + Sync` bounds of
//! real rayon are preserved so the code stays ready for a true parallel
//! backend.
#![warn(missing_docs)]

/// The rayon prelude: parallel-iterator entry-point traits.
pub mod prelude {
    /// Types convertible into a (here: sequential) parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type produced.
        type Item: Send;
        /// Consume `self` and iterate.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// `par_iter()` — iterate by shared reference.
    pub trait IntoParallelRefIterator<'data> {
        /// Iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type produced.
        type Item: Send + 'data;
        /// Iterate over `&self`.
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// `par_iter_mut()` — iterate by exclusive reference.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type produced.
        type Item: Send + 'data;
        /// Iterate over `&mut self`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<'data, T: Sync + Send + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + Send + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = std::slice::IterMut<'data, T>;
        type Item = &'data mut T;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        type Item = &'data mut T;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_matches_sequential() {
        let mut v = vec![1u32, 2, 3];
        v.par_iter_mut().for_each(|x| *x *= 10);
        assert_eq!(v, vec![10, 20, 30]);
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![20, 40, 60]);
        let sum: u32 = v.into_par_iter().sum();
        assert_eq!(sum, 60);
    }
}
