//! Offline, dependency-free stand-in for the slice of the `rayon` API the
//! workspace uses (`par_iter`, `par_iter_mut`, `into_par_iter`).
//!
//! The build environment cannot reach a crates registry, so the workspace
//! path-redirects `rayon` here. Unlike the earlier sequential shim, this
//! version executes on a real worker pool built from `std::thread::scope`:
//! each combinator splits its input into chunks on a **worker-count
//! independent grid**, workers claim chunks dynamically through an atomic
//! cursor, and results are reassembled in chunk order. That makes every
//! combinator's output — element order included — identical for any worker
//! count, which is what lets the simulator promise byte-identical reports
//! under 1, 2, 4 or N threads.
//!
//! Determinism contract:
//!
//! * `map(..).collect()` gathers per-chunk result vectors and concatenates
//!   them in chunk-index order, so output order equals input order.
//! * `for_each` closures receive disjoint items; the *side effects inside
//!   one item* are single-threaded (each item is visited exactly once, by
//!   exactly one worker). Cross-item effects must be order-independent,
//!   exactly as real rayon requires.
//! * The chunk grid depends only on the input length and `with_min_len`,
//!   never on the worker count, so even non-associative chunk reductions
//!   (`sum` over floats) do not vary with thread count. The inline path
//!   taken when only one worker is available folds items in the same
//!   left-to-right order.
//!
//! Nested parallelism is flattened: a `par_*` call made from inside a pool
//! worker runs sequentially on that worker (a thread-local guard), so
//! kernels like `neighbor_queries` that are parallel at top level do not
//! explode the thread count when invoked from inside a per-rank closure.
//!
//! The worker count defaults to `RAYON_NUM_THREADS` or, failing that, the
//! machine's available parallelism. [`set_num_threads`] /
//! [`ThreadPoolBuilder::build_global`] override it at runtime; with one
//! worker every combinator degenerates to the plain sequential loop with
//! zero threading overhead.
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global worker count. `0` means "not initialised yet" — the first query
/// resolves the default lazily so `RAYON_NUM_THREADS` set by a test runner
/// before first use is honoured.
static WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Upper bound on the number of chunks a single combinator splits into.
/// Fixed (not derived from the worker count) so that chunk boundaries —
/// and therefore any per-chunk reduction order — are identical no matter
/// how many workers execute them.
const MAX_TOTAL_CHUNKS: usize = 64;

fn default_workers() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of worker threads parallel combinators may use (including the
/// calling thread, which always participates).
pub fn current_num_threads() -> usize {
    let w = WORKERS.load(Ordering::Acquire);
    if w != 0 {
        return w;
    }
    let n = default_workers();
    // Racy initialisation is fine: every racer computes the same default.
    let _ = WORKERS.compare_exchange(0, n, Ordering::AcqRel, Ordering::Acquire);
    WORKERS.load(Ordering::Acquire)
}

/// Set the global worker count (clamped to at least 1). Convenience used
/// by the bench harness's `--workers N` flag; [`ThreadPoolBuilder`] is the
/// rayon-shaped route to the same switch.
pub fn set_num_threads(n: usize) {
    WORKERS.store(n.max(1), Ordering::Release);
}

/// Error returned by [`ThreadPoolBuilder::build_global`]. The shim's
/// global "pool" is just a worker-count cell, so building it cannot
/// actually fail; the type exists for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool could not be built")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the global pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (worker count from the
    /// environment / hardware).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` worker threads; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally. Unlike real rayon this may be
    /// called repeatedly; the latest call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_workers() } else { self.num_threads };
        set_num_threads(n);
        Ok(())
    }
}

thread_local! {
    /// True while this thread is executing a chunk on behalf of a parallel
    /// combinator. Nested `par_*` calls check it and run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn in_pool() -> bool {
    IN_POOL.with(|c| c.get())
}

/// RAII flag flip for [`IN_POOL`]; restores the previous value so the
/// calling thread (which participates in its own pool) is unwound
/// correctly even on panic.
struct PoolGuard {
    prev: bool,
}

impl PoolGuard {
    fn enter() -> PoolGuard {
        PoolGuard { prev: IN_POOL.with(|c| c.replace(true)) }
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL.with(|c| c.set(prev));
    }
}

/// Decide the execution shape for `len` items: `None` → run inline on the
/// caller (single worker, nested call, or not enough work per
/// `with_min_len`); `Some((threads, chunk))` → split into `chunk`-sized
/// pieces claimed dynamically by `threads` workers. The chunk size is a
/// function of `len` and `min_len` only — never of the worker count.
fn plan(len: usize, min_len: usize) -> Option<(usize, usize)> {
    if len < 2 || in_pool() {
        return None;
    }
    let min_len = min_len.max(1);
    let threads = current_num_threads().min(len / min_len);
    if threads < 2 {
        return None;
    }
    let chunk = len.div_ceil(MAX_TOTAL_CHUNKS).max(min_len);
    let n_chunks = len.div_ceil(chunk);
    Some((threads.min(n_chunks), chunk))
}

/// Run `worker` on `threads` threads (the caller is one of them) inside a
/// scope, with the nested-parallelism guard set on each. Panics in any
/// worker propagate to the caller when the scope joins.
fn run_on_workers<F: Fn() + Sync>(threads: usize, worker: F) {
    std::thread::scope(|s| {
        for _ in 1..threads {
            s.spawn(|| {
                let _g = PoolGuard::enter();
                worker();
            });
        }
        let _g = PoolGuard::enter();
        worker();
    });
}

/// Dynamic chunk scheduler without results: workers claim chunk indices
/// from an atomic cursor until exhausted.
fn run_chunks<F: Fn(usize) + Sync>(threads: usize, n_chunks: usize, process: F) {
    let next = AtomicUsize::new(0);
    run_on_workers(threads, || loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= n_chunks {
            break;
        }
        process(c);
    });
}

/// Dynamic chunk scheduler with ordered gather: `process(c)` returns chunk
/// `c`'s results, which are handed back concatenated in chunk order
/// regardless of which worker ran which chunk.
fn run_chunks_ordered<R, F>(threads: usize, n_chunks: usize, process: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> Vec<R> + Sync,
{
    let slots: Vec<Mutex<Vec<R>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    run_chunks(threads, n_chunks, |c| {
        let r = process(c);
        *slots[c].lock().expect("result slot poisoned") = r;
    });
    let mut out = Vec::new();
    for slot in slots {
        out.extend(slot.into_inner().expect("result slot poisoned"));
    }
    out
}

/// Split an owned vector into chunks of `chunk` elements, preserving
/// order. `v` must be non-empty.
fn split_vec<T>(v: Vec<T>, chunk: usize) -> Vec<Vec<T>> {
    let mut parts = Vec::with_capacity(v.len().div_ceil(chunk));
    let mut rest = v;
    loop {
        if rest.len() <= chunk {
            parts.push(rest);
            return parts;
        }
        let tail = rest.split_off(chunk);
        parts.push(rest);
        rest = tail;
    }
}

/// Parallel iterator over `&[T]` (from `par_iter()`).
pub struct ParIter<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync + Send> ParIter<'a, T> {
    /// Require at least `n` items per worker; inputs smaller than `2n`
    /// run inline. Mirrors rayon's `IndexedParallelIterator::with_min_len`
    /// and is the knob cheap-per-item kernels use to avoid paying thread
    /// spawn cost on small inputs.
    pub fn with_min_len(mut self, n: usize) -> Self {
        self.min_len = n.max(1);
        self
    }

    /// Apply `f` to every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Send + Sync,
    {
        let len = self.slice.len();
        match plan(len, self.min_len) {
            None => self.slice.iter().for_each(f),
            Some((threads, chunk)) => {
                let slice = self.slice;
                let f = &f;
                run_chunks(threads, len.div_ceil(chunk), |c| {
                    let lo = c * chunk;
                    slice[lo..len.min(lo + chunk)].iter().for_each(f);
                });
            }
        }
    }

    /// Map every item through `f`; finish with [`ParMap::collect`].
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Send + Sync,
        R: Send,
    {
        ParMap { slice: self.slice, f, min_len: self.min_len }
    }
}

/// Mapped parallel iterator over `&[T]`.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
    min_len: usize,
}

impl<'a, T: Sync + Send, F> ParMap<'a, T, F> {
    /// See [`ParIter::with_min_len`].
    pub fn with_min_len(mut self, n: usize) -> Self {
        self.min_len = n.max(1);
        self
    }

    /// Execute the map and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Send + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        let len = self.slice.len();
        let out = match plan(len, self.min_len) {
            None => self.slice.iter().map(&self.f).collect(),
            Some((threads, chunk)) => {
                let slice = self.slice;
                let f = &self.f;
                run_chunks_ordered(threads, len.div_ceil(chunk), |c| {
                    let lo = c * chunk;
                    slice[lo..len.min(lo + chunk)].iter().map(f).collect()
                })
            }
        };
        C::from(out)
    }
}

/// Parallel iterator over `&mut [T]` (from `par_iter_mut()`).
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
    min_len: usize,
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// See [`ParIter::with_min_len`].
    pub fn with_min_len(mut self, n: usize) -> Self {
        self.min_len = n.max(1);
        self
    }

    /// Apply `f` to every item. Items are disjoint `&mut T`s, so each is
    /// mutated by exactly one worker.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Send + Sync,
    {
        let len = self.slice.len();
        match plan(len, self.min_len) {
            None => {
                for x in self.slice.iter_mut() {
                    f(x);
                }
            }
            Some((threads, chunk)) => {
                let parts: Vec<Mutex<Option<&mut [T]>>> =
                    self.slice.chunks_mut(chunk).map(|c| Mutex::new(Some(c))).collect();
                let f = &f;
                run_chunks(threads, parts.len(), |c| {
                    let part = parts[c]
                        .lock()
                        .expect("chunk slot poisoned")
                        .take()
                        .expect("chunk claimed exactly once");
                    for x in part {
                        f(x);
                    }
                });
            }
        }
    }

    /// Map every item through `f`; finish with [`ParMapMut::collect`].
    pub fn map<R, F>(self, f: F) -> ParMapMut<'a, T, F>
    where
        F: Fn(&mut T) -> R + Send + Sync,
        R: Send,
    {
        ParMapMut { slice: self.slice, f, min_len: self.min_len }
    }

    /// Pair the `i`-th `&mut T` with the `i`-th element of `other`
    /// (stopping at the shorter), as rayon's indexed `zip` does.
    pub fn zip<U: Send>(self, other: Vec<U>) -> ParZipMut<'a, T, U> {
        ParZipMut { slice: self.slice, other, min_len: self.min_len }
    }
}

/// Mapped parallel iterator over `&mut [T]`.
pub struct ParMapMut<'a, T, F> {
    slice: &'a mut [T],
    f: F,
    min_len: usize,
}

impl<'a, T: Send, F> ParMapMut<'a, T, F> {
    /// See [`ParIter::with_min_len`].
    pub fn with_min_len(mut self, n: usize) -> Self {
        self.min_len = n.max(1);
        self
    }

    /// Execute the map and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&mut T) -> R + Send + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        let len = self.slice.len();
        let out = match plan(len, self.min_len) {
            None => self.slice.iter_mut().map(&self.f).collect(),
            Some((threads, chunk)) => {
                let parts: Vec<Mutex<Option<&mut [T]>>> =
                    self.slice.chunks_mut(chunk).map(|c| Mutex::new(Some(c))).collect();
                let f = &self.f;
                run_chunks_ordered(threads, parts.len(), |c| {
                    let part = parts[c]
                        .lock()
                        .expect("chunk slot poisoned")
                        .take()
                        .expect("chunk claimed exactly once");
                    part.iter_mut().map(f).collect()
                })
            }
        };
        C::from(out)
    }
}

/// Zipped parallel iterator: disjoint `&mut T`s paired with owned `U`s.
pub struct ParZipMut<'a, T, U> {
    slice: &'a mut [T],
    other: Vec<U>,
    min_len: usize,
}

impl<'a, T: Send, U: Send> ParZipMut<'a, T, U> {
    /// Apply `f` to every `(item, paired value)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&mut T, U)) + Send + Sync,
    {
        let ParZipMut { slice, mut other, min_len } = self;
        let n = slice.len().min(other.len());
        other.truncate(n);
        let slice = &mut slice[..n];
        match plan(n, min_len) {
            None => {
                for pair in slice.iter_mut().zip(other) {
                    f(pair);
                }
            }
            Some((threads, chunk)) => {
                // One claim-once slot per chunk: a mutable sub-slice
                // paired with its split of the zipped values.
                type ZipSlot<'s, T, U> = Mutex<Option<(&'s mut [T], Vec<U>)>>;
                let parts: Vec<ZipSlot<'_, T, U>> = slice
                    .chunks_mut(chunk)
                    .zip(split_vec(other, chunk))
                    .map(|pair| Mutex::new(Some(pair)))
                    .collect();
                let f = &f;
                run_chunks(threads, parts.len(), |c| {
                    let (part, vals) = parts[c]
                        .lock()
                        .expect("chunk slot poisoned")
                        .take()
                        .expect("chunk claimed exactly once");
                    for pair in part.iter_mut().zip(vals) {
                        f(pair);
                    }
                });
            }
        }
    }
}

/// Parallel iterator over an owned `Vec<T>` (from `into_par_iter()`).
pub struct IntoParIter<T> {
    items: Vec<T>,
    min_len: usize,
}

impl<T: Send> IntoParIter<T> {
    /// See [`ParIter::with_min_len`].
    pub fn with_min_len(mut self, n: usize) -> Self {
        self.min_len = n.max(1);
        self
    }

    /// Apply `f` to every item by value.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Send + Sync,
    {
        let len = self.items.len();
        match plan(len, self.min_len) {
            None => self.items.into_iter().for_each(f),
            Some((threads, chunk)) => {
                let parts: Vec<Mutex<Option<Vec<T>>>> =
                    split_vec(self.items, chunk).into_iter().map(|p| Mutex::new(Some(p))).collect();
                let f = &f;
                run_chunks(threads, parts.len(), |c| {
                    let part = parts[c]
                        .lock()
                        .expect("chunk slot poisoned")
                        .take()
                        .expect("chunk claimed exactly once");
                    part.into_iter().for_each(f);
                });
            }
        }
    }

    /// Sum the items. Chunk partial sums are combined in chunk order on a
    /// worker-count-independent grid, so the result is deterministic for
    /// any thread count (exactly equal for integers; stable for floats
    /// because the grid does not move with the worker count).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let len = self.items.len();
        match plan(len, self.min_len) {
            None => self.items.into_iter().sum(),
            Some((threads, chunk)) => {
                let parts: Vec<Mutex<Option<Vec<T>>>> =
                    split_vec(self.items, chunk).into_iter().map(|p| Mutex::new(Some(p))).collect();
                let partials = run_chunks_ordered(threads, parts.len(), |c| {
                    let part = parts[c]
                        .lock()
                        .expect("chunk slot poisoned")
                        .take()
                        .expect("chunk claimed exactly once");
                    vec![part.into_iter().sum::<S>()]
                });
                partials.into_iter().sum()
            }
        }
    }
}

/// The rayon prelude: parallel-iterator entry-point traits.
pub mod prelude {
    use super::{IntoParIter, ParIter, ParIterMut};

    /// Types convertible into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Iterator type produced.
        type Iter;
        /// Item type produced.
        type Item: Send;
        /// Consume `self` and iterate.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// `par_iter()` — iterate by shared reference.
    pub trait IntoParallelRefIterator<'data> {
        /// Iterator type produced.
        type Iter;
        /// Item type produced.
        type Item: Send + 'data;
        /// Iterate over `&self`.
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// `par_iter_mut()` — iterate by exclusive reference.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Iterator type produced.
        type Iter;
        /// Item type produced.
        type Item: Send + 'data;
        /// Iterate over `&mut self`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = IntoParIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            IntoParIter { items: self, min_len: 1 }
        }
    }

    impl<'data, T: Sync + Send + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = ParIter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            ParIter { slice: self, min_len: 1 }
        }
    }

    impl<'data, T: Sync + Send + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = ParIter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            ParIter { slice: self, min_len: 1 }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = ParIterMut<'data, T>;
        type Item = &'data mut T;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            ParIterMut { slice: self, min_len: 1 }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = ParIterMut<'data, T>;
        type Item = &'data mut T;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            ParIterMut { slice: self, min_len: 1 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::Barrier;

    /// Serialises tests that pin the global worker count; restores the
    /// previous count on drop.
    struct Workers {
        prev: usize,
        _lock: std::sync::MutexGuard<'static, ()>,
    }

    impl Workers {
        fn pin(n: usize) -> Workers {
            static LOCK: Mutex<()> = Mutex::new(());
            let lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let prev = current_num_threads();
            set_num_threads(n);
            Workers { prev, _lock: lock }
        }
    }

    impl Drop for Workers {
        fn drop(&mut self) {
            set_num_threads(self.prev);
        }
    }

    #[test]
    fn par_iter_mut_matches_sequential() {
        let mut v = vec![1u32, 2, 3];
        v.par_iter_mut().for_each(|x| *x *= 10);
        assert_eq!(v, vec![10, 20, 30]);
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![20, 40, 60]);
        let sum: u32 = v.into_par_iter().sum();
        assert_eq!(sum, 60);
    }

    #[test]
    fn results_identical_for_any_worker_count() {
        let input: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * x + 1).collect();
        let expect_sum: u64 = input.iter().sum();
        for workers in [1, 2, 3, 4, 8] {
            let _w = Workers::pin(workers);
            let got: Vec<u64> = input.par_iter().map(|x| x * x + 1).collect();
            assert_eq!(got, expect, "map order must not depend on {workers} workers");
            let sum: u64 = input.clone().into_par_iter().sum();
            assert_eq!(sum, expect_sum);
            let mut v = input.clone();
            v.par_iter_mut().for_each(|x| *x = x.wrapping_mul(3));
            assert!(v.iter().zip(&input).all(|(a, b)| *a == b.wrapping_mul(3)));
        }
    }

    #[test]
    fn zip_pairs_by_index() {
        let _w = Workers::pin(4);
        let mut v: Vec<u64> = (0..500).collect();
        let addends: Vec<u64> = (0..500).map(|i| i * 10).collect();
        v.par_iter_mut().zip(addends).for_each(|(x, a)| *x += a);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 * 11);
        }
    }

    #[test]
    fn zip_stops_at_shorter_side() {
        let _w = Workers::pin(2);
        let mut v = vec![0u32; 10];
        v.par_iter_mut().zip(vec![1u32; 4]).for_each(|(x, a)| *x += a);
        assert_eq!(v.iter().sum::<u32>(), 4);
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        let _w = Workers::pin(4);
        // 64 items → 64 unit chunks → 4 workers. Every closure waits on a
        // 4-way barrier, so the test deadlocks (and times out) unless four
        // distinct threads really participate.
        let barrier = Barrier::new(4);
        let ids = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        items.par_iter().for_each(|_| {
            barrier.wait();
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert_eq!(ids.lock().unwrap().len(), 4);
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        let _w = Workers::pin(4);
        let outer: Vec<u32> = (0..8).collect();
        let ok = Mutex::new(Vec::new());
        outer.par_iter().for_each(|&i| {
            // Inside a pool worker: nested call must not spawn and must
            // still produce ordered results.
            let inner: Vec<u32> =
                (0..100u32).collect::<Vec<_>>().par_iter().map(|x| x + i).collect();
            let good = inner.iter().enumerate().all(|(k, v)| *v == k as u32 + i);
            ok.lock().unwrap().push(good);
        });
        let ok = ok.into_inner().unwrap();
        assert_eq!(ok.len(), 8);
        assert!(ok.iter().all(|b| *b));
    }

    #[test]
    fn with_min_len_keeps_results_correct() {
        let _w = Workers::pin(4);
        let input: Vec<u64> = (0..10_000).collect();
        let got: Vec<u64> = input.par_iter().map(|x| x + 7).with_min_len(4096).collect();
        assert_eq!(got.len(), input.len());
        assert!(got.iter().enumerate().all(|(i, v)| *v == i as u64 + 7));
        // Below the threshold the inline path must agree.
        let small: Vec<u64> = (0..100).collect();
        let a: Vec<u64> = small.par_iter().map(|x| x * 2).with_min_len(4096).collect();
        let b: Vec<u64> = small.par_iter().map(|x| x * 2).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let _w = Workers::pin(4);
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = vec![41u32];
        let mut one_mut = one.clone();
        one_mut.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one_mut, vec![42]);
        let s: u32 = one.into_par_iter().sum();
        assert_eq!(s, 41);
    }

    #[test]
    fn builder_sets_global_count() {
        let _w = Workers::pin(2);
        ThreadPoolBuilder::new().num_threads(3).build_global().unwrap();
        assert_eq!(current_num_threads(), 3);
        set_num_threads(2); // hand back what Workers::pin expects to restore
    }
}
