//! Offline, dependency-free stand-in for the slice of the `proptest` API
//! this workspace's property tests use.
//!
//! The build environment cannot reach a crates registry, so the workspace
//! path-redirects `proptest` here. Semantics: each `proptest!` test runs
//! `ProptestConfig::cases` cases with inputs drawn from a per-test
//! deterministic RNG (seeded from the test name), and assertion failures
//! panic immediately. There is **no shrinking** — a failing case reports
//! its values via the assertion message only — but generation is fully
//! reproducible run-to-run, which is what the crash-consistency suites
//! rely on.
#![warn(missing_docs)]

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    /// Per-test configuration (stand-in for `proptest::test_runner::ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running exactly `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier
            // crash-consistency suites fast while still sweeping the
            // operation space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator used for case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the stream from a test name so every test gets a distinct
        /// but stable input sequence.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64-bit word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform usize in `[0, bound)`; `bound` must be non-zero.
        pub fn next_below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*};
    }

    impl_strategy_int_range!(usize, u64, u32, u16, u8, i64, i32, i8);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_tuple!(A);
    impl_strategy_tuple!(A, B);
    impl_strategy_tuple!(A, B, C);
    impl_strategy_tuple!(A, B, C, D);
    impl_strategy_tuple!(A, B, C, D, E);

    /// Type-erased strategy, used by [`Union`] to mix heterogeneous arms.
    pub struct BoxedStrategy<T> {
        gen_fn: Box<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen_fn)(rng)
        }
    }

    /// Erase a strategy's type (used by the `prop_oneof!` expansion).
    pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy { gen_fn: Box::new(move |rng| s.generate(rng)) }
    }

    /// Weighted choice between type-erased arms (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms; total weight must be > 0.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(
                arms.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0,
                "prop_oneof: zero total weight"
            );
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.next_u64() % total;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw a uniformly distributed value of `Self`.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.next_unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Full-domain strategy for `T` (stand-in for `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.next_below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy (stand-in for `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.next_below(self.items.len())].clone()
        }
    }

    /// Uniform choice from `items` (stand-in for `proptest::sample::select`).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty list");
        Select { items }
    }
}

/// The proptest prelude: everything tests conventionally glob-import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module-style access to strategy factories (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Assert inside a property test (panics — no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` item runs
/// `cases` times with deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let case_fn = || -> ::core::result::Result<(), ()> {
                    $body
                    ::core::result::Result::Ok(())
                };
                if case_fn().is_err() {
                    panic!("proptest case {case} rejected unexpectedly");
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![
                3 => (0u8..=255).prop_map(Op::Push),
                1 => Just(Op::Pop),
            ],
            0..20,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(a in 3usize..9, b in 0.0f64..=1.0, c in any::<u64>()) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assume!(c != 1);
            prop_assert_ne!(c, 1);
        }

        #[test]
        fn vec_strategy_sizes(ops in arb_ops(), pick in prop::sample::select(vec![-1i8, 1])) {
            prop_assert!(ops.len() < 20);
            prop_assert!(pick == -1 || pick == 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = arb_ops();
        let mut r1 = crate::test_runner::TestRng::deterministic("x");
        let mut r2 = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
