//! Offline, dependency-free stand-in for the tiny slice of the `rand`
//! crate API this workspace uses.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace path-redirects `rand` here (see `[workspace.dependencies]`
//! in the root manifest). The simulator only ever needs *seeded,
//! deterministic* pseudo-randomness — every consumer constructs its RNG
//! with [`SeedableRng::seed_from_u64`] — so a splitmix64 generator is a
//! faithful substitute: same API, same determinism guarantees, no
//! cryptographic claims.
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Return the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range`. Matches `rand`'s panic behaviour on
    /// empty ranges.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draw one uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32, u16, u8);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Named RNG implementations (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush; ideal for reproducible simulation streams.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..100), b.gen_range(0usize..100));
        }
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
