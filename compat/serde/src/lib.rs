//! Offline stand-in for the `serde` crate: the `Serialize` half only,
//! specialised to JSON.
//!
//! The workspace is built without registry access, so this crate provides
//! just the surface the repo uses: a [`Serialize`] trait, impls for the
//! primitive/std types our experiment rows contain, and a re-exported
//! `#[derive(Serialize)]` macro (from the sibling `serde_derive` compat
//! crate). `serde_json::to_string` drives the trait.
//!
//! The wire format is deliberately simple: `Serialize::json` appends the
//! JSON encoding of `self` to a `String`. Output is deterministic — no
//! maps with randomized iteration order, floats via Rust's shortest
//! round-trip formatting — so byte-identical re-runs stay byte-identical.

// Let `::serde::...` paths emitted by the derive macro resolve even when
// the derive is used inside this crate (e.g. in the tests below).
extern crate self as serde;

pub use serde_derive::Serialize;

/// Types that can append their JSON encoding to a buffer.
///
/// Implemented by `#[derive(Serialize)]` for structs with named fields;
/// hand-written impls below cover primitives, strings, options, vectors,
/// slices and fixed-size arrays.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn json(&self, out: &mut String);
}

/// Helpers used by the generated derive code. Not intended to be called
/// directly, but harmless if you do.
pub mod ser {
    use super::Serialize;

    /// Write one struct field: a leading comma unless `first`, the quoted
    /// key, a colon, then the value.
    pub fn field<T: Serialize + ?Sized>(out: &mut String, first: bool, name: &str, value: &T) {
        if !first {
            out.push(',');
        }
        string(out, name);
        out.push(':');
        value.json(out);
    }

    /// Write a JSON string literal with escaping.
    pub fn string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn json(&self, out: &mut String) {
        if self.is_finite() {
            // Shortest round-trip formatting: deterministic and lossless.
            out.push_str(&self.to_string());
        } else {
            // JSON has no NaN/Inf; serde_json emits null for them too.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for str {
    fn json(&self, out: &mut String) {
        ser::string(out, self);
    }
}

impl Serialize for String {
    fn json(&self, out: &mut String) {
        ser::string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json(&self, out: &mut String) {
        (**self).json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json(&self, out: &mut String) {
        match self {
            Some(v) => v.json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json(&self, out: &mut String) {
        self.as_slice().json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json(&self, out: &mut String) {
        self.as_slice().json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(to_json(42u64), "42");
        assert_eq!(to_json(-7i32), "-7");
        assert_eq!(to_json(true), "true");
        assert_eq!(to_json(1.5f64), "1.5");
        assert_eq!(to_json(f64::NAN), "null");
        assert_eq!(to_json("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_json([0.5f64; 2]), "[0.5,0.5]");
        assert_eq!(to_json(Option::<u64>::None), "null");
        assert_eq!(to_json(Some(9usize)), "9");
    }

    #[test]
    fn derive_emits_object() {
        #[derive(Serialize)]
        struct Row {
            name: &'static str,
            n: usize,
            xs: [f64; 2],
            opt: Option<u64>,
        }
        let r = Row { name: "fig6", n: 3, xs: [1.0, 2.5], opt: None };
        assert_eq!(to_json(r), r#"{"name":"fig6","n":3,"xs":[1,2.5],"opt":null}"#);
    }
}
