//! Offline, dependency-free stand-in for the slice of the `criterion` API
//! the bench harnesses use.
//!
//! The build environment cannot reach a crates registry, so the workspace
//! path-redirects `criterion` here. No statistics engine: each benchmark
//! closure runs a small fixed number of iterations and the harness prints
//! the mean wall-clock time per iteration. That is enough to (a) keep
//! `cargo bench` compiling and running offline and (b) give a coarse
//! trend line; the repro binary's virtual-clock numbers remain the
//! authoritative perf metric.
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark when the group does not override
/// `sample_size`. Kept deliberately low: the closures here run whole
/// droplet simulations.
const DEFAULT_SAMPLES: usize = 5;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string(), samples: DEFAULT_SAMPLES }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), DEFAULT_SAMPLES, f);
    }
}

/// A named group of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the number of iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion collects `n` statistical samples; here it is the
        // iteration count, capped so heavyweight sims stay quick.
        self.samples = n.clamp(1, 20);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.samples, f);
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.samples, |b| f(b, input));
    }

    /// Finish the group (no-op; reports are printed as benches run).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter value into one id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{function_name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, running it `samples` times (plus one warm-up).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn run_one<F>(group: &str, id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { samples, mean_ns: 0.0 };
    f(&mut b);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if b.mean_ns >= 1e6 {
        println!("bench {label:<50} {:>12.3} ms/iter ({samples} iters)", b.mean_ns / 1e6);
    } else {
        println!("bench {label:<50} {:>12.0} ns/iter ({samples} iters)", b.mean_ns);
    }
}

/// Collect benchmark functions into a callable group (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups (stand-in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &p| b.iter(|| p * 2));
        g.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }
}
