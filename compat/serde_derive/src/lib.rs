//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` for structs
//! with named fields.
//!
//! Built directly on `proc_macro` token streams (the container has no
//! `syn`/`quote`). The parser is intentionally small: it skips outer
//! attributes and visibility, reads the struct name, and collects the
//! field identifiers from the brace group, tracking `<`/`>` depth so that
//! commas inside generic arguments (`BTreeMap<u64, u32>`) do not split a
//! field. Tuple structs, unit structs, enums, and generic structs are
//! rejected with a compile error — the workspace's experiment rows are all
//! plain named-field structs.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the JSON-appending compat trait) for a
/// named-field struct. Field order in the JSON object matches declaration
/// order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("compile_error tokens"),
    }
}

fn generate(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        other => return Err(format!("derive(Serialize) supports only structs, got {other:?}")),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected struct name, got {other:?}")),
    };
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive(Serialize) does not support generic struct {name}"));
    }
    let fields = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => field_names(g.stream())?,
        other => {
            return Err(format!(
                "derive(Serialize) supports only named-field structs ({name}), got {other:?}"
            ))
        }
    };

    let mut body = String::from("out.push('{');\n");
    for (k, f) in fields.iter().enumerate() {
        body.push_str(&format!(
            "::serde::ser::field(out, {first}, {f:?}, &self.{f});\n",
            first = k == 0
        ));
    }
    body.push_str("out.push('}');");

    let impl_src = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}"
    );
    impl_src.parse().map_err(|e| format!("generated impl failed to parse: {e:?}"))
}

/// Advance `i` past any `#[...]` outer attributes and a `pub`/`pub(...)`
/// visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // '#' followed by a bracket group.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Collect field identifiers from the contents of the struct's brace
/// group: `attrs vis name : Type ,` repeated.
fn field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field {name}, got {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        // Groups ((), [], {}) are single tokens, so only `<`/`>` need
        // explicit depth tracking.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        names.push(name);
    }
    Ok(names)
}
