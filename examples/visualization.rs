//! The `Extract` routine end to end: run the droplet simulation, extract
//! the unstructured mesh at a few time steps, and write legacy VTK files
//! (loadable in ParaView/VisIt) with the level-set, pressure, VOF, and
//! anchored/dangling node classification attached.
//!
//! ```text
//! cargo run --release -p pmoctree --example visualization
//! # then open /tmp/pmoctree-vtk/droplet_step*.vtk in ParaView
//! ```

use std::path::PathBuf;

use pmoctree::amr::{export_vtk_with_fields, extract, PmBackend};
use pmoctree::nvbm::{DeviceModel, NvbmArena};
use pmoctree::pm::{PmConfig, PmOctree};
use pmoctree::solver::{SimConfig, Simulation};

fn main() -> std::io::Result<()> {
    let out_dir = PathBuf::from("/tmp/pmoctree-vtk");
    std::fs::create_dir_all(&out_dir)?;

    let cfg = SimConfig { steps: 12, max_level: 5, base_level: 2, ..SimConfig::default() };
    let sim = Simulation::new(cfg);
    let mut b = PmBackend::new(PmOctree::create(
        NvbmArena::new(128 << 20, DeviceModel::default()),
        PmConfig::default(),
    ));
    sim.construct(&mut b);

    for step in 0..cfg.steps {
        sim.step(&mut b, step);
        if step % 4 == 3 || step == cfg.steps - 1 {
            let mesh = extract(&mut b);
            let vtk = export_vtk_with_fields(&mut b);
            let path = out_dir.join(format!("droplet_step{step:02}.vtk"));
            std::fs::write(&path, vtk)?;
            println!(
                "step {step:>2}: wrote {} ({} cells, {} vertices, {} dangling nodes)",
                path.display(),
                mesh.cell_count(),
                mesh.vertex_count(),
                mesh.dangling_count(),
            );
        }
    }
    println!("\nOpen the files in ParaView; color by `level` to see the");
    println!("adaptive refinement follow the jet, or by `vof` for the liquid.");
    Ok(())
}
