//! The other two workloads the paper's introduction motivates (§1):
//! droplet impact on a solid surface, and rapid boiling flow — both run
//! on PM-octree with per-step persistence, demonstrating that the
//! orthogonal-persistence interface is workload-agnostic.
//!
//! ```text
//! cargo run --release -p pmoctree --example impact_and_boiling
//! ```

use pmoctree::amr::{adapt, AdaptCriterion, Cell, OctreeBackend, PmBackend, Target};
use pmoctree::morton::OctKey;
use pmoctree::nvbm::{DeviceModel, NvbmArena};
use pmoctree::pm::{PmConfig, PmOctree};
use pmoctree::solver::{advect_levelset, BoilingFlow, DropletImpact, LevelSet, SharedTime};

struct Crit<'a> {
    ls: &'a dyn LevelSet,
    time: SharedTime,
    max_level: u8,
}

impl AdaptCriterion for Crit<'_> {
    fn target(&self, key: &OctKey, _d: &Cell) -> Target {
        let t = self.time.get();
        let h = key.extent();
        let d = self.ls.phi(key.center(), t).abs();
        if d < 1.2 * h {
            Target::Refine
        } else if d > 4.8 * h {
            Target::Coarsen
        } else {
            Target::Keep
        }
    }

    fn max_level(&self) -> u8 {
        self.max_level
    }
}

fn run(name: &str, ls: &dyn LevelSet, t0: f64, dt: f64, steps: usize) {
    let mut b = PmBackend::new(PmOctree::create(
        NvbmArena::new(128 << 20, DeviceModel::default()),
        PmConfig::default(),
    ));
    let time = SharedTime::new();
    // Construct: base grid + adapt to the interface at t0.
    time.set(t0);
    pmoctree::amr::construct_uniform(&mut b, 2);
    let crit = Crit { ls, time: time.clone(), max_level: 5 };
    for _ in 0..4 {
        adapt(&mut b, &crit);
    }
    advect_levelset(&mut b, ls, t0);
    println!("== {name} ==");
    for s in 0..steps {
        let t = t0 + dt * (s as f64 + 1.0);
        time.set(t);
        adapt(&mut b, &crit);
        let written = advect_levelset(&mut b, ls, t);
        b.end_of_step(s + 1); // pm_persistent every step
        println!(
            "  step {s:>2} (t={t:.2}): {:>6} elements, {:>5} cells re-advected, overlap {:>5.1}%",
            b.leaf_count(),
            written,
            100.0 * b.tree.events.overlap_ratio(),
        );
    }
    println!(
        "  done: {:.3} virt-s, {} NVBM write-lines, {} persists\n",
        b.elapsed_ns() as f64 * 1e-9,
        b.tree.store.arena.stats.nvbm.write_lines,
        b.tree.events.persists,
    );
}

fn main() {
    let impact = DropletImpact::default();
    run("droplet impact on a solid surface", &impact, 0.05, 0.06, 10);
    let boiling = BoilingFlow::default();
    run("rapid boiling flow", &boiling, 0.0, 0.1, 10);
}
