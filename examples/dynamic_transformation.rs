//! Feature-directed dynamic layout transformation (§3.3) in action.
//!
//! The droplet interface sweeps through the domain; with a DRAM budget
//! that holds only a fraction of the octants, the transformation
//! pre-executes the refinement feature functions on sampled octants and
//! promotes the subtrees the *next* step will hammer. Compares NVBM
//! write counts with the feature-directed layout vs the oblivious
//! (first-come-first-served) one.
//!
//! ```text
//! cargo run --release --example dynamic_transformation
//! ```

use pmoctree::amr::PmBackend;
use pmoctree::nvbm::{DeviceModel, NvbmArena};
use pmoctree::pm::{PmConfig, PmOctree};
use pmoctree::solver::{refinement_feature, solver_feature, SimConfig, Simulation};

fn run(transform: bool, c0_octants: usize, cfg: SimConfig) -> (f64, u64, u64, usize) {
    let sim = Simulation::new(cfg);
    let mut b = PmBackend::new(PmOctree::create(
        NvbmArena::new(128 << 20, DeviceModel::default()),
        PmConfig {
            dynamic_transform: transform,
            c0_capacity_octants: c0_octants,
            ..PmConfig::default()
        },
    ));
    if transform {
        // The application hands its own refinement condition and solver
        // region-of-interest test to the library — that's the entire
        // integration burden (§3.3: "those functions already exist").
        b.tree.add_feature(refinement_feature(sim.interface, sim.time.clone(), cfg.band_cells));
        b.tree.add_feature(solver_feature());
    }
    sim.construct(&mut b);
    // Placement freezes after the initial partition: only the
    // transformation (when enabled) can follow the moving interface.
    b.tree.cfg.seed_c0 = false;
    let mut report = pmoctree::solver::RunReport::default();
    for s in 0..cfg.steps {
        report.steps.push(sim.step(&mut b, s));
    }
    (
        report.total_secs(),
        b.tree.store.arena.stats.nvbm.write_lines,
        b.tree.events.transforms,
        report.peak_leaves(),
    )
}

fn main() {
    let cfg = SimConfig { steps: 8, max_level: 6, base_level: 2, dt: 0.09, ..SimConfig::default() };
    // DRAM holds ~30% of the mesh — the regime where placement matters.
    let est = 520 + 2 * 4usize.pow(cfg.max_level as u32);
    let c0 = est * 30 / 100;
    println!("DRAM (C0) budget: {c0} octants (~30% of the mesh)\n");

    let (t_off, w_off, _, elements) = run(false, c0, cfg);
    let (t_on, w_on, transforms, _) = run(true, c0, cfg);

    println!("elements: {elements}");
    println!("without transformation: {:.3} virt-s, {} NVBM write-lines", t_off, w_off);
    println!(
        "with    transformation: {:.3} virt-s, {} NVBM write-lines ({} transformations fired)",
        t_on, w_on, transforms
    );
    println!(
        "\nsavings: {:.1}% time, {:.1}% NVBM writes",
        (1.0 - t_on / t_off) * 100.0,
        (1.0 - w_on as f64 / w_off as f64) * 100.0
    );
    println!("(paper, 224M elements with C0 holding 7%: -24.7% time, -31% NVBM writes)");
}
