//! Weak and strong scaling of the parallel droplet simulation (the
//! Figures 6–9 experiments at interactive scale).
//!
//! Each simulated rank runs the real meshing/solver code on its Morton
//! subdomain; the Gemini-like interconnect is charged with an α–β model
//! onto per-rank virtual clocks.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use pmoctree::cluster::{ClusterSim, Scheme};
use pmoctree::solver::SimConfig;

fn cfg(max_level: u8) -> SimConfig {
    SimConfig { steps: 3, max_level, base_level: 2, ..SimConfig::default() }
}

fn main() {
    println!("== weak scaling (elements grow with ranks) ==");
    println!("procs | elements | exec (virt s) | refine% bal% part% solve% persist%");
    for (procs, level) in [(1usize, 3u8), (4, 4), (16, 5)] {
        let mut c = ClusterSim::new(Scheme::pm_default(), procs, cfg(level), 48 << 20);
        let r = c.run(3);
        let p = r.phase_percent();
        println!(
            "{:>5} | {:>8} | {:>13.4} | {:>6.1} {:>5.1} {:>5.1} {:>6.1} {:>7.1}",
            procs,
            r.peak_elements,
            r.exec_secs(),
            p[0],
            p[1],
            p[2],
            p[3],
            p[4]
        );
    }
    println!("(paper Fig 7: the Partition share grows from 0% at 1 proc to ~56% at 1000)\n");

    println!("== strong scaling (fixed problem, more ranks) ==");
    println!("procs | exec (virt s) | speedup | ideal");
    let mut base = None;
    for procs in [2usize, 4, 8, 16] {
        let mut c = ClusterSim::new(Scheme::pm_default(), procs, cfg(5), 48 << 20);
        let r = c.run(3);
        let t = r.exec_secs();
        let b = *base.get_or_insert(t);
        println!("{:>5} | {:>13.4} | {:>7.2} | {:>5.2}", procs, t, b / t, procs as f64 / 2.0);
    }
    println!("\n== scheme comparison at 8 ranks ==");
    for scheme in [Scheme::pm_default(), Scheme::InCore, Scheme::Etree] {
        let mut c = ClusterSim::new(scheme, 8, cfg(5), 48 << 20);
        let r = c.run(3);
        println!("  {:<12} {:>10.4} virt-s", r.scheme, r.exec_secs());
    }
    println!("(paper Fig 6/9: pm-octree tracks in-core closely; out-of-core is far slower)");
}
