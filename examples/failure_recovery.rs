//! §5.6 failure recovery, end to end: run the droplet simulation under
//! each persistence scheme, kill it at a time step, restart, and report
//! the recovery times for the same-node and new-node scenarios — then
//! resume a *whole run* (config, step index, timing history) through the
//! pm-rt runtime and verify the report is identical to an uncrashed run.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use pmoctree::cluster::recovery_comparison;
use pmoctree::morton::OctKey;
use pmoctree::nvbm::{CrashMode, DeviceModel, NvbmArena};
use pmoctree::pm::{CellData, PmConfig, PmOctree};
use pmoctree::solver::{resume_persistent, run_persistent, run_persistent_partial, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: the §5.6 comparison table.
    let cfg = SimConfig { steps: 14, max_level: 5, base_level: 2, ..SimConfig::default() };
    println!("running the droplet simulation, killing at step 12...\n");
    let reports = recovery_comparison(cfg, 12, 128 << 20);
    println!("scheme       | elements | same-node restart | new-node restart");
    for r in &reports {
        println!(
            "{:<12} | {:>8} | {:>14.4} s | {}",
            r.scheme,
            r.elements,
            r.same_node_secs,
            r.new_node_secs.map_or("unrecoverable".into(), |t| format!("{t:.4} s")),
        );
    }
    println!("\n(paper, 6.75M elements: in-core 42.9 s / 42.9 s; pm-octree 2.1 s / 3.48 s;");
    println!(" out-of-core ~0 / unrecoverable — same ordering, scaled-down mesh)\n");

    // Part 2: show *why* PM-octree recovery is safe — torn writes cannot
    // corrupt the persisted version, under any cache-eviction pattern.
    println!("crash-consistency demo: 20 random crash patterns mid-update...");
    let mut intact = 0;
    for seed in 0..20 {
        let arena = NvbmArena::new(32 << 20, DeviceModel::default());
        let mut t = PmOctree::create(arena, PmConfig::default());
        t.refine(OctKey::root())?;
        t.set_data(OctKey::root().child(1), CellData { phi: 1.0, ..Default::default() })?;
        t.persist();
        let expect = t.leaves_sorted();
        // A storm of unpersisted updates, then a crash that commits a
        // random half of the dirty cachelines in arbitrary order.
        t.refine(OctKey::root().child(2))?;
        t.refine(OctKey::root().child(3))?;
        t.update_leaves(|_, d| Some(CellData { pressure: d.pressure + 1.0, ..*d }));
        let PmOctree { store, .. } = t;
        let mut arena = store.arena;
        arena.crash(CrashMode::CommitRandom { p: 0.5, seed });
        let mut r = PmOctree::restore(arena, PmConfig::default())?;
        if r.leaves_sorted() == expect {
            intact += 1;
        }
    }
    println!("recovered the exact persisted version in {intact}/20 crash patterns");
    assert_eq!(intact, 20);

    // Part 3: whole-application resume. The pm-rt runtime persists the
    // run itself — SimConfig, next step, per-step timing history — in
    // the same commit as the mesh, so a killed run picks up where it
    // left off and finishes with the *identical* report.
    println!("\nwhole-run resume: kill after 2 of 4 steps, reattach, finish...");
    let cfg = SimConfig { steps: 4, max_level: 4, base_level: 2, ..SimConfig::default() };
    let pm_cfg = PmConfig::default();
    let baseline = run_persistent(cfg, pm_cfg, NvbmArena::new(48 << 20, DeviceModel::default()))?;
    let (mut b, _rt, _done) =
        run_persistent_partial(cfg, pm_cfg, NvbmArena::new(48 << 20, DeviceModel::default()), 2)?;
    b.tree.store.arena.crash(CrashMode::LoseDirty);
    let media = b.tree.store.arena.clone_media();
    let resumed =
        resume_persistent(NvbmArena::from_media(media, DeviceModel::default()), cfg, pm_cfg)?;
    println!(
        "resumed at step {:?}; report identical to the uncrashed run: {}",
        resumed.resumed_at,
        resumed.report.steps == baseline.report.steps
    );
    assert_eq!(resumed.report.steps, baseline.report.steps);
    Ok(())
}
