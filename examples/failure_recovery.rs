//! §5.6 failure recovery, end to end: run the droplet simulation under
//! each persistence scheme, kill it at a time step, restart, and report
//! the recovery times for the same-node and new-node scenarios.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use pmoctree::cluster::recovery_comparison;
use pmoctree::morton::OctKey;
use pmoctree::nvbm::{CrashMode, DeviceModel, NvbmArena};
use pmoctree::pm::{CellData, PmConfig, PmOctree};
use pmoctree::solver::SimConfig;

fn main() {
    // Part 1: the §5.6 comparison table.
    let cfg = SimConfig { steps: 14, max_level: 5, base_level: 2, ..SimConfig::default() };
    println!("running the droplet simulation, killing at step 12...\n");
    let reports = recovery_comparison(cfg, 12, 128 << 20);
    println!("scheme       | elements | same-node restart | new-node restart");
    for r in &reports {
        println!(
            "{:<12} | {:>8} | {:>14.4} s | {}",
            r.scheme,
            r.elements,
            r.same_node_secs,
            r.new_node_secs.map_or("unrecoverable".into(), |t| format!("{t:.4} s")),
        );
    }
    println!("\n(paper, 6.75M elements: in-core 42.9 s / 42.9 s; pm-octree 2.1 s / 3.48 s;");
    println!(" out-of-core ~0 / unrecoverable — same ordering, scaled-down mesh)\n");

    // Part 2: show *why* PM-octree recovery is safe — torn writes cannot
    // corrupt the persisted version, under any cache-eviction pattern.
    println!("crash-consistency demo: 20 random crash patterns mid-update...");
    let mut intact = 0;
    for seed in 0..20 {
        let arena = NvbmArena::new(32 << 20, DeviceModel::default());
        let mut t = PmOctree::create(arena, PmConfig::default());
        t.refine(OctKey::root()).unwrap();
        t.set_data(OctKey::root().child(1), CellData { phi: 1.0, ..Default::default() }).unwrap();
        t.persist();
        let expect = t.leaves_sorted();
        // A storm of unpersisted updates, then a crash that commits a
        // random half of the dirty cachelines in arbitrary order.
        t.refine(OctKey::root().child(2)).unwrap();
        t.refine(OctKey::root().child(3)).unwrap();
        t.update_leaves(|_, d| Some(CellData { pressure: d.pressure + 1.0, ..*d }));
        let PmOctree { store, .. } = t;
        let mut arena = store.arena;
        arena.crash(CrashMode::CommitRandom { p: 0.5, seed });
        let mut r = PmOctree::restore(arena, PmConfig::default())
            .expect("recovery from a committed version never fails");
        if r.leaves_sorted() == expect {
            intact += 1;
        }
    }
    println!("recovered the exact persisted version in {intact}/20 crash patterns");
    assert_eq!(intact, 20);
}
