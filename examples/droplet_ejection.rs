//! The paper's driving scientific workload: droplet ejection in inkjet
//! printing, run on all three octree implementations side by side.
//!
//! The liquid jet grows from the nozzle, necks by Rayleigh–Plateau
//! instability, pinches off, and breaks into droplets; the adaptive mesh
//! tracks the interface at the finest level. Prints per-step element
//! counts, an ASCII slice of the mesh refinement, and the final
//! virtual-time comparison.
//!
//! ```text
//! cargo run --release --example droplet_ejection
//! ```

use pmoctree::amr::{EtreeBackend, InCoreBackend, OctreeBackend, PmBackend};
use pmoctree::nvbm::{DeviceModel, NvbmArena};
use pmoctree::pm::{PmConfig, PmOctree};
use pmoctree::solver::{SimConfig, Simulation};

/// ASCII rendering of the x = 0.5 slice: one character per finest-level
/// column, showing the deepest refinement level in that column.
fn render_slice(b: &mut dyn OctreeBackend, max_level: u8) -> String {
    let n = 1usize << max_level.min(6);
    let mut depth = vec![vec![0u8; n]; n]; // [z][y]
    b.for_each_leaf(&mut |k, _| {
        let c = k.center();
        if (c[0] - 0.5).abs() < 0.51 * k.extent() {
            let y = ((c[1] * n as f64) as usize).min(n - 1);
            let z = ((c[2] * n as f64) as usize).min(n - 1);
            // A leaf covers several columns when coarse.
            let span = (n >> k.level().min(max_level)).max(1);
            for dz in 0..span {
                for dy in 0..span {
                    let zz = (z / span) * span + dz;
                    let yy = (y / span) * span + dy;
                    depth[zz][yy] = depth[zz][yy].max(k.level());
                }
            }
        }
    });
    let glyphs = [b' ', b'.', b':', b'-', b'=', b'#', b'@', b'%'];
    let mut out = String::new();
    for z in (0..n).rev() {
        for y in 0..n {
            out.push(glyphs[(depth[z][y] as usize).min(glyphs.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let cfg = SimConfig { steps: 12, max_level: 5, base_level: 2, ..SimConfig::default() };
    let sim = Simulation::new(cfg);

    let mut pm = PmBackend::new(PmOctree::create(
        NvbmArena::new(128 << 20, DeviceModel::default()),
        PmConfig::default(),
    ));
    let mut ic = InCoreBackend::new();
    let mut et = EtreeBackend::on_nvbm();

    sim.construct(&mut pm);
    sim.construct(&mut ic);
    sim.construct(&mut et);
    println!("constructed: {} elements\n", pm.leaf_count());

    for s in 0..cfg.steps {
        let bp = sim.step(&mut pm, s);
        sim.step(&mut ic, s);
        sim.step(&mut et, s);
        println!(
            "step {s:>2}: {:>6} elements | pm step {:>8.2} virt-ms (refine {:>5.2}, balance {:>5.2}, solve {:>5.2}, persist {:>5.2})",
            bp.leaves,
            bp.total_ns() as f64 * 1e-6,
            bp.refine_ns as f64 * 1e-6,
            bp.balance_ns as f64 * 1e-6,
            bp.solve_ns as f64 * 1e-6,
            bp.persist_ns as f64 * 1e-6,
        );
        if s == 4 || s == cfg.steps - 1 {
            let t = cfg.t0 + cfg.dt * (s as f64 + 1.0);
            println!("\nmesh slice at x=0.5 (t={t:.2}; denser glyph = deeper refinement):");
            println!("{}", render_slice(&mut pm, cfg.max_level));
        }
    }

    println!("final virtual execution time (lower is better):");
    for b in [&mut pm as &mut dyn OctreeBackend, &mut ic, &mut et] {
        println!("  {:<12} {:>10.3} virt-ms", b.name(), b.elapsed_ns() as f64 * 1e-6);
    }
    println!(
        "\npm-octree: {} persists, last overlap {:.0}%, {} layout transformations, max NVBM wear {}",
        pm.tree.events.persists,
        100.0 * pm.tree.events.overlap_ratio(),
        pm.tree.events.transforms,
        pm.tree.store.arena.stats.max_wear().0,
    );
}
