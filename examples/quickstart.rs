//! Quickstart: create a PM-octree on emulated NVBM, mesh it, persist it,
//! crash, and recover — then do the same for a plain (non-octree) struct
//! through the `pm-rt` orthogonal-persistence runtime.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pmoctree::morton::OctKey;
use pmoctree::nvbm::{CrashMode, DeviceModel, NvbmArena};
use pmoctree::pm::{CellData, PmConfig, PmOctree};
use pmoctree::rt::PmRt;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64 MiB emulated NVBM device with the paper's Table 2 latencies
    // (DRAM 60/60 ns, NVBM 100/150 ns per cacheline).
    let arena = NvbmArena::new(64 << 20, DeviceModel::default());

    // pm_create: the octree lives partly in DRAM (hot C0 subtrees),
    // partly in NVBM; all placement is automatic. The builder validates
    // the knobs up front (a zero C0 budget, a threshold outside (0,1],
    // ... are rejected before any octant is written).
    let cfg = PmConfig::builder().c0_capacity_octants(1 << 15).build()?;
    let mut tree = PmOctree::create(arena, cfg);

    // Mesh: refine the root, then one corner twice more.
    tree.refine(OctKey::root())?;
    tree.refine(OctKey::root().child(0))?;
    tree.refine(OctKey::root().child(0).child(0))?;
    println!("meshed: {} leaves, depth {}", tree.leaf_count(), tree.depth());

    // Attach some cell data.
    tree.set_data(
        OctKey::root().child(0).child(0).child(5),
        CellData { phi: -0.25, pressure: 1.0, vof: 1.0, work: 1.0 },
    )?;

    // pm_persistent: merge C0 into C1, flush, atomically advance the
    // version roots. Everything up to here is now crash-proof.
    tree.persist();
    println!(
        "persisted: overlap with previous version {:.1}%, {} NVBM write-lines so far",
        100.0 * tree.events.overlap_ratio(),
        tree.store.arena.stats.nvbm.write_lines
    );

    // Keep working... these changes will be lost by the crash below.
    tree.refine(OctKey::root().child(7))?;
    tree.set_data(
        OctKey::root().child(0).child(0).child(5),
        CellData { phi: 9.9, ..Default::default() },
    )?;
    println!("after more meshing: {} leaves (not yet persisted)", tree.leaf_count());

    // CRASH: the CPU cache loses a random subset of unflushed lines —
    // exactly the reordering hazard §1 of the paper describes.
    let PmOctree { store, .. } = tree;
    let mut arena = store.arena;
    arena.crash(CrashMode::CommitRandom { p: 0.5, seed: 42 });

    // pm_restore: back to the last persisted version, near-instantly.
    // Restore is fallible — unformatted or corrupt media reports a
    // PmError instead of panicking.
    let t0 = arena.clock.now_ns();
    let mut recovered = PmOctree::restore(arena, PmConfig::default())?;
    let restore_ns = recovered.store.arena.clock.now_ns() - t0;
    println!(
        "recovered {} leaves in {:.1} virtual µs",
        recovered.leaf_count(),
        restore_ns as f64 / 1000.0
    );
    let d = recovered
        .get_data(OctKey::root().child(0).child(0).child(5))
        .ok_or("persisted cell missing after recovery")?;
    assert_eq!(d.phi, -0.25, "persisted value survived; unpersisted overwrite did not");
    println!("cell data intact: phi = {}", d.phi);

    // The same four verbs for arbitrary data: the pm-rt runtime persists
    // any `PmData` value under a tenant-scoped root, commits with one
    // atomic root-table swap, and swizzles everything back on restore.
    // The typed-handle API binds runtime + arena into a session, then
    // scopes it to a tenant namespace. No octree required.
    let mut arena = NvbmArena::new(1 << 20, DeviceModel::default());
    let mut rt = PmRt::create(&mut arena)?; // pm_create
    {
        let mut app = rt.session(&mut arena).tenant("app")?;
        app.put("greeting", &"hello, NVBM".to_string())?;
        app.put("step", &7u64)?;
        app.commit()?; // pm_persistent
        app.put("step", &8u64)?; // staged, never committed...
    }
    arena.crash(CrashMode::LoseDirty); // ...and lost here
    let mut back = PmRt::restore(&mut arena)?; // pm_restore
    let mut app = back.session(&mut arena).tenant("app")?;
    let step: u64 = app.get("step")?.ok_or("step root missing")?;
    let greeting: String = app.get("greeting")?.ok_or("greeting missing")?;
    println!("pm-rt after crash: {greeting:?}, step {step} (the uncommitted 8 was discarded)");
    assert_eq!(step, 7);

    // MVCC: pin a snapshot of the committed state, keep writing, and the
    // snapshot still reads the pinned version until it is dropped.
    let snap = app.snapshot();
    app.put("step", &9u64)?;
    app.commit()?;
    let pinned: u64 = snap.get(&mut arena, "step")?.ok_or("pinned step missing")?;
    println!("snapshot still reads step {pinned} while HEAD is at 9");
    assert_eq!(pinned, 7);
    drop(snap);
    PmRt::destroy(&mut arena); // pm_delete
    Ok(())
}
